package trader

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/types"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

func printerType() types.Type {
	return types.Type{
		Name: "Printer",
		Ops: map[string]types.Operation{
			"print": {
				Args:     []types.Desc{types.String},
				Outcomes: map[string][]types.Desc{"ok": {types.Int}, "jammed": {}},
			},
			"status": {
				Outcomes: map[string][]types.Desc{"ok": {types.String}},
			},
		},
	}
}

// printRequirement is a narrower requirement Printer conforms to.
func printRequirement() types.Type {
	return types.Type{
		Name: "CanPrint",
		Ops: map[string]types.Operation{
			"print": {
				Args:     []types.Desc{types.String},
				Outcomes: map[string][]types.Desc{"ok": {types.Int}, "jammed": {}},
			},
		},
	}
}

type env struct {
	fabric *netsim.Fabric
	t      *testing.T
}

func newEnv(t *testing.T) *env {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	return &env{fabric: f, t: t}
}

func (e *env) capsule(name string) *capsule.Capsule {
	ep, err := e.fabric.Endpoint(name)
	if err != nil {
		e.t.Fatal(err)
	}
	c := capsule.New(name, ep, codec)
	e.t.Cleanup(func() { _ = c.Close() })
	return c
}

func (e *env) trader(name string) *Trader {
	c := e.capsule(name)
	tr, err := New(name, c, types.NewManager())
	if err != nil {
		e.t.Fatal(err)
	}
	return tr
}

func mkRef(id string) wire.Ref {
	return wire.Ref{ID: id, TypeName: "Printer", Endpoints: []string{"ep-" + id}}
}

func TestAdvertiseImportBasic(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	if _, err := tr.Advertise(printerType(), mkRef("p1"), map[string]wire.Value{"dpi": int64(600)}); err != nil {
		t.Fatal(err)
	}
	offers, err := tr.Import(context.Background(), ImportSpec{Requirement: printRequirement()})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Ref.ID != "p1" {
		t.Fatalf("offers %v", offers)
	}
}

func TestImportTypeSafety(t *testing.T) {
	// "a client is only told of service offers which provide at least the
	// operations it requires".
	e := newEnv(t)
	tr := e.trader("t1")
	scanner := types.Type{Name: "Scanner", Ops: map[string]types.Operation{
		"scan": {Outcomes: map[string][]types.Desc{"ok": {types.Bytes}}},
	}}
	if _, err := tr.Advertise(scanner, mkRef("s1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advertise(printerType(), mkRef("p1"), nil); err != nil {
		t.Fatal(err)
	}
	offers, err := tr.Import(context.Background(), ImportSpec{Requirement: printRequirement()})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].ServiceType != "Printer" {
		t.Fatalf("type-unsafe import: %v", offers)
	}
}

func TestPropertyConstraints(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	ads := []struct {
		id   string
		prop map[string]wire.Value
	}{
		{"fast", map[string]wire.Value{"dpi": int64(1200), "colour": true, "zone": "east"}},
		{"slow", map[string]wire.Value{"dpi": int64(300), "colour": false, "zone": "east"}},
		{"mono", map[string]wire.Value{"dpi": int64(600), "zone": "west"}},
	}
	for _, a := range ads {
		if _, err := tr.Advertise(printerType(), mkRef(a.id), a.prop); err != nil {
			t.Fatal(err)
		}
	}
	imp := func(cs ...Constraint) []string {
		offers, err := tr.Import(context.Background(), ImportSpec{
			Requirement: printRequirement(), Constraints: cs,
		})
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, o := range offers {
			ids = append(ids, o.Ref.ID)
		}
		return ids
	}
	if got := imp(Constraint{Key: "dpi", Op: OpGe, Value: int64(600)}); len(got) != 2 {
		t.Fatalf("dpi>=600: %v", got)
	}
	if got := imp(Constraint{Key: "colour", Op: OpEq, Value: true}); len(got) != 1 || got[0] != "fast" {
		t.Fatalf("colour==true: %v", got)
	}
	if got := imp(Constraint{Key: "colour", Op: OpExists}); len(got) != 2 {
		t.Fatalf("colour exists: %v", got)
	}
	if got := imp(Constraint{Key: "zone", Op: OpNe, Value: "east"}); len(got) != 1 || got[0] != "mono" {
		t.Fatalf("zone!=east: %v", got)
	}
	if got := imp(
		Constraint{Key: "dpi", Op: OpGe, Value: int64(500)},
		Constraint{Key: "zone", Op: OpEq, Value: "east"},
	); len(got) != 1 || got[0] != "fast" {
		t.Fatalf("conjunction: %v", got)
	}
	// Non-numeric comparison errors.
	if _, err := tr.Import(context.Background(), ImportSpec{
		Requirement: printRequirement(),
		Constraints: []Constraint{{Key: "zone", Op: OpGe, Value: "east"}},
	}); !errors.Is(err, ErrBadConstraint) {
		t.Fatalf("want ErrBadConstraint, got %v", err)
	}
}

func TestWithdraw(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	id, err := tr.Advertise(printerType(), mkRef("p1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id); !errors.Is(err, ErrUnknownOffer) {
		t.Fatalf("double withdraw: %v", err)
	}
	offers, _ := tr.Import(context.Background(), ImportSpec{Requirement: printRequirement()})
	if len(offers) != 0 {
		t.Fatalf("withdrawn offer still matched: %v", offers)
	}
}

func TestFederatedImportQualifiesContext(t *testing.T) {
	e := newEnv(t)
	trA := e.trader("org-a")
	trB := e.trader("org-b")
	trA.LinkTo("to-b", trB.Ref())
	if _, err := trB.Advertise(printerType(), mkRef("remote-p"), nil); err != nil {
		t.Fatal(err)
	}
	// Local-only import misses the remote offer.
	offers, err := trA.Import(context.Background(), ImportSpec{Requirement: printRequirement()})
	if err != nil || len(offers) != 0 {
		t.Fatalf("local import: %v %v", offers, err)
	}
	// One hop finds it, context-qualified.
	offers, err = trA.Import(context.Background(), ImportSpec{Requirement: printRequirement(), MaxHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Fatalf("federated import: %v", offers)
	}
	o := offers[0]
	if len(o.Ref.Context) != 1 || o.Ref.Context[0] != "to-b" {
		t.Fatalf("reference not context-qualified: %v", o.Ref)
	}
	if o.ID != "to-b!org-b/offer-1" {
		t.Fatalf("offer id not qualified: %q", o.ID)
	}
}

func TestFederatedImportChain(t *testing.T) {
	e := newEnv(t)
	trs := make([]*Trader, 4)
	for i := range trs {
		trs[i] = e.trader(fmt.Sprintf("ctx%d", i))
	}
	for i := 0; i+1 < len(trs); i++ {
		trs[i].LinkTo(fmt.Sprintf("next%d", i+1), trs[i+1].Ref())
	}
	if _, err := trs[3].Advertise(printerType(), mkRef("deep"), nil); err != nil {
		t.Fatal(err)
	}
	// Not enough hops: miss.
	offers, err := trs[0].Import(context.Background(), ImportSpec{Requirement: printRequirement(), MaxHops: 2})
	if err != nil || len(offers) != 0 {
		t.Fatalf("2 hops should miss: %v %v", offers, err)
	}
	// Three hops: found, with the full context trail.
	offers, err = trs[0].Import(context.Background(), ImportSpec{Requirement: printRequirement(), MaxHops: 3})
	if err != nil || len(offers) != 1 {
		t.Fatalf("3 hops: %v %v", offers, err)
	}
	wantTrail := []string{"next1", "next2", "next3"}
	got := offers[0].Ref.Context
	if len(got) != len(wantTrail) {
		t.Fatalf("context trail %v, want %v", got, wantTrail)
	}
	for i := range wantTrail {
		if got[i] != wantTrail[i] {
			t.Fatalf("context trail %v, want %v", got, wantTrail)
		}
	}
}

func TestFederationLoopTerminates(t *testing.T) {
	e := newEnv(t)
	trA := e.trader("a")
	trB := e.trader("b")
	trA.LinkTo("ab", trB.Ref())
	trB.LinkTo("ba", trA.Ref())
	if _, err := trA.Advertise(printerType(), mkRef("pa"), nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var offers []Offer
	var err error
	go func() {
		offers, err = trA.Import(context.Background(), ImportSpec{Requirement: printRequirement(), MaxHops: 10})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("federated import with a cyclic graph did not terminate")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Fatalf("loop produced duplicates or losses: %v", offers)
	}
}

func TestDeadLinkSkipped(t *testing.T) {
	e := newEnv(t)
	trA := e.trader("a")
	trB := e.trader("b")
	trA.LinkTo("dead", wire.Ref{ID: "gone", Endpoints: []string{"nowhere"}})
	trA.LinkTo("live", trB.Ref())
	if _, err := trB.Advertise(printerType(), mkRef("pb"), nil); err != nil {
		t.Fatal(err)
	}
	offers, err := trA.Import(context.Background(), ImportSpec{Requirement: printRequirement(), MaxHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Ref.ID != "pb" {
		t.Fatalf("dead link handling: %v", offers)
	}
}

func TestRemoteClientAdvertiseImportWithdraw(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	clientCap := e.capsule("client")
	tc := NewClient(clientCap, tr.Ref())

	ctx := context.Background()
	id, err := tc.Advertise(ctx, printerType(), mkRef("p1"), map[string]wire.Value{"dpi": int64(600)})
	if err != nil {
		t.Fatal(err)
	}
	offer, err := tc.ImportOne(ctx, ImportSpec{Requirement: printRequirement()})
	if err != nil {
		t.Fatal(err)
	}
	if offer.Ref.ID != "p1" || offer.Properties["dpi"] != int64(600) {
		t.Fatalf("imported offer %v", offer)
	}
	if err := tc.Withdraw(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.ImportOne(ctx, ImportSpec{Requirement: printRequirement()}); !errors.Is(err, ErrNoOffer) {
		t.Fatalf("want ErrNoOffer, got %v", err)
	}
}

func TestMaxMatches(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	for i := 0; i < 10; i++ {
		if _, err := tr.Advertise(printerType(), mkRef(fmt.Sprintf("p%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	offers, err := tr.Import(context.Background(), ImportSpec{Requirement: printRequirement(), MaxMatches: 3})
	if err != nil || len(offers) != 3 {
		t.Fatalf("max matches: %v %v", offers, err)
	}
}

func TestResourceManagerPokedOnSelection(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	rmCap := e.capsule("rm")
	poked := make(chan wire.Value, 1)
	rmRef, err := rmCap.Export(capsule.ServantFunc(
		func(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			if op == "selected" {
				poked <- args[0]
			}
			return "", nil, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	id, err := tr.Advertise(printerType(), mkRef("passive"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetResourceManager(id, rmRef); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Import(context.Background(), ImportSpec{Requirement: printRequirement()}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-poked:
		ref, ok := v.(wire.Ref)
		if !ok || ref.ID != "passive" {
			t.Fatalf("resource manager got %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resource manager not poked on selection")
	}
}

func TestTypeEncodeDecodeRoundTrip(t *testing.T) {
	orig := printerType()
	enc := types.EncodeType(orig)
	// Push it through the codec as a real import would.
	raw, err := codec.Encode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := codec.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := types.DecodeType(v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signature() != orig.Signature() || got.Name != orig.Name {
		t.Fatalf("type round trip mismatch:\n%s\n%s", got.Signature(), orig.Signature())
	}
}

func TestAdvertiserInterface(t *testing.T) {
	// The trader satisfies capsule.Advertiser for the node manager:
	// AdvertiseOffer resolves the named type via the type manager.
	e := newEnv(t)
	tr := e.trader("t1")
	// Unknown type name: refused.
	if _, err := tr.AdvertiseOffer("Printer", mkRef("p1"), nil); err == nil {
		t.Fatal("unregistered type advertised")
	}
	if _, err := tr.Advertise(printerType(), mkRef("p0"), nil); err != nil {
		t.Fatal(err) // registers the type as a side effect
	}
	id, err := tr.AdvertiseOffer("Printer", mkRef("p1"), map[string]wire.Value{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.OfferCount() != 2 {
		t.Fatalf("offer count %d", tr.OfferCount())
	}
	if err := tr.WithdrawOffer(id); err != nil {
		t.Fatal(err)
	}
	if tr.OfferCount() != 1 {
		t.Fatalf("offer count after withdraw %d", tr.OfferCount())
	}
	if tr.ContextName() != "t1" {
		t.Fatalf("context name %q", tr.ContextName())
	}
}

func TestRemoteLinkOperation(t *testing.T) {
	// Federation links can be installed through the trader's own remote
	// interface ("link" op), not only through the Go API.
	e := newEnv(t)
	trA := e.trader("a")
	trB := e.trader("b")
	clientCap := e.capsule("client")
	if _, err := trB.Advertise(printerType(), mkRef("pb"), nil); err != nil {
		t.Fatal(err)
	}
	outcome, _, err := clientCap.Invoke(context.Background(), trA.Ref(), "link",
		[]wire.Value{"to-b", trB.Ref()})
	if err != nil || outcome != "ok" {
		t.Fatalf("remote link: %q %v", outcome, err)
	}
	offers, err := trA.Import(context.Background(), ImportSpec{
		Requirement: printRequirement(), MaxHops: 1,
	})
	if err != nil || len(offers) != 1 {
		t.Fatalf("import through remotely-installed link: %v %v", offers, err)
	}
}
