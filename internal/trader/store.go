package trader

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/types"
)

// NumShards splits the offer space. Offers shard by FNV-1a over their
// service-type name (the same hash discipline as the rpc call tables):
// an import consults every shard, but all offers of one type land in one
// shard, so per-shard snapshots stay type-clustered and a type-indexed
// lookup never crosses a shard boundary. Power of two so the hash masks.
const NumShards = 16

// typeShard selects the stripe for a service-type name by FNV-1a.
func typeShard(name string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h & (NumShards - 1))
}

// offerBucket is the mutable per-(service type, signature) index within a
// shard. Register replaces types by name, so one service-type name can
// carry structurally different types over time; buckets subdivide by
// signature so each holds exactly one structural variant and an import
// matches the variant once instead of once per offer. The canonical type
// is cloned exactly once per bucket — a million offers of one type share
// one clone instead of carrying a million.
type offerBucket struct {
	serviceType string
	sig         string
	typ         types.Type
	offers      map[string]*Offer

	// group caches the immutable snapshot group built from this bucket;
	// dirty marks it stale. A rebuild reuses every clean group untouched,
	// so snapshot cost is proportional to what changed, not store size.
	// added/removed record the delta since group was built: a dirty
	// rebuild merges the sorted delta into the sorted base instead of
	// re-sorting the whole bucket, so churning one offer in a
	// 100k-offer bucket costs a linear copy, not an n·log n sort.
	group   *snapGroup
	dirty   bool
	added   []*Offer
	removed map[string]struct{}
}

// snapGroup is one immutable (service type, signature) run of a shard
// snapshot: offers sorted by id, never mutated after publication.
type snapGroup struct {
	serviceType string
	sig         string
	typ         types.Type
	offers      []*Offer
}

// shardSnapshot is the RCU-published read view of one shard. Readers
// load it with a single atomic pointer load and walk it without locks;
// writers never mutate a published snapshot, they publish a successor.
type shardSnapshot struct {
	version uint64
	builtAt time.Time
	groups  []*snapGroup
}

// offerShard is one stripe of the sharded store. version counts
// mutations; a snapshot whose version matches is exactly current, and
// the gap between them is the number of writes the snapshot is behind —
// which is what the staleness policy meters.
type offerShard struct {
	mu      sync.Mutex
	byID    map[string]*storedOffer
	buckets map[string]*offerBucket // key: serviceType + "\x00" + sig

	version atomic.Uint64
	count   atomic.Int64
	snap    atomic.Pointer[shardSnapshot]
}

// storedOffer pairs an offer with its bucket so withdrawal needs no
// second lookup of the type index.
type storedOffer struct {
	offer  *Offer
	bucket *offerBucket
}

func bucketKey(serviceType, sig string) string {
	return serviceType + "\x00" + sig
}

// insert registers o (whose type has signature sig) in the shard.
func (sh *offerShard) insert(o *Offer, sig string) {
	sh.mu.Lock()
	key := bucketKey(o.ServiceType, sig)
	b := sh.buckets[key]
	if b == nil {
		b = &offerBucket{
			serviceType: o.ServiceType,
			sig:         sig,
			typ:         o.Type.Clone(), // canonical: shared by every offer in the bucket
			offers:      make(map[string]*Offer),
		}
		sh.buckets[key] = b
	}
	// Intern the type: the stored offer references the bucket's canonical
	// clone; cloneOffer deep-copies on the way out, so sharing is safe.
	o.Type = b.typ
	b.offers[o.ID] = o
	b.dirty = true
	if b.group != nil {
		b.added = append(b.added, o)
	}
	sh.byID[o.ID] = &storedOffer{offer: o, bucket: b}
	sh.version.Add(1)
	sh.count.Add(1)
	sh.mu.Unlock()
}

// remove withdraws id from the shard, reporting whether it was present.
func (sh *offerShard) remove(id string) bool {
	sh.mu.Lock()
	so, ok := sh.byID[id]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	delete(sh.byID, id)
	b := so.bucket
	delete(b.offers, id)
	b.dirty = true
	if b.group != nil {
		// If the offer arrived after the last build it only exists in the
		// pending delta; otherwise the base copy must be masked out.
		inAdded := false
		for i, o := range b.added {
			if o.ID == id {
				b.added = append(b.added[:i], b.added[i+1:]...)
				inAdded = true
				break
			}
		}
		if !inAdded {
			if b.removed == nil {
				b.removed = make(map[string]struct{})
			}
			b.removed[id] = struct{}{}
		}
	}
	if len(b.offers) == 0 {
		delete(sh.buckets, bucketKey(b.serviceType, b.sig))
	}
	sh.version.Add(1)
	sh.count.Add(-1)
	sh.mu.Unlock()
	return true
}

// contains reports whether id is stored in the shard.
func (sh *offerShard) contains(id string) bool {
	sh.mu.Lock()
	_, ok := sh.byID[id]
	sh.mu.Unlock()
	return ok
}

// rebuild publishes a snapshot current as of the shard version at entry,
// reusing the cached group of every bucket untouched since the last
// build. Double-checked: a racing reader that rebuilt first wins and
// this call returns its snapshot without repeating the work.
func (sh *offerShard) rebuild(now time.Time) *shardSnapshot {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v := sh.version.Load()
	if snap := sh.snap.Load(); snap != nil && snap.version == v {
		return snap
	}
	groups := make([]*snapGroup, 0, len(sh.buckets))
	for _, b := range sh.buckets {
		if b.dirty || b.group == nil {
			g := &snapGroup{serviceType: b.serviceType, sig: b.sig, typ: b.typ}
			if b.group == nil {
				// First build: sort the whole bucket.
				ids := make([]string, 0, len(b.offers))
				for id := range b.offers {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				g.offers = make([]*Offer, len(ids))
				for i, id := range ids {
					g.offers[i] = b.offers[id]
				}
			} else {
				// Incremental: merge the sorted delta into the sorted
				// base, masking removals — linear in bucket size.
				sort.Slice(b.added, func(i, j int) bool { return b.added[i].ID < b.added[j].ID })
				g.offers = make([]*Offer, 0, len(b.offers))
				base, add := b.group.offers, b.added
				for len(base) > 0 || len(add) > 0 {
					switch {
					case len(base) == 0 || (len(add) > 0 && add[0].ID < base[0].ID):
						g.offers = append(g.offers, add[0])
						add = add[1:]
					default:
						if _, gone := b.removed[base[0].ID]; !gone {
							g.offers = append(g.offers, base[0])
						}
						base = base[1:]
					}
				}
			}
			b.group = g
			b.added = nil
			b.removed = nil
			b.dirty = false
		}
		groups = append(groups, b.group)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].serviceType != groups[j].serviceType {
			return groups[i].serviceType < groups[j].serviceType
		}
		return groups[i].sig < groups[j].sig
	})
	snap := &shardSnapshot{version: v, builtAt: now, groups: groups}
	sh.snap.Store(snap)
	return snap
}
