// Fuzzing for the constraint-evaluation path (Constraint.matches,
// compareNumeric, asFloat). Properties and comparands are arbitrary
// wire values, so matching must tolerate every kind combination: the
// invariants are that evaluation never panics, that every error is an
// ErrBadConstraint (imports surface it verbatim to clients), that the
// kind-blind operators (==, !=, exists) never error, and that numeric
// comparison is antisymmetric.
package trader

import (
	"errors"
	"testing"

	"odp/internal/wire"
)

// fuzzValue decodes one wire value from the fuzzer's primitive inputs.
// kind selects the dynamic type; the unused payloads are ignored.
func fuzzValue(kind uint8, i int64, f float64, s string) wire.Value {
	switch kind % 6 {
	case 0:
		return i
	case 1:
		return uint64(i)
	case 2:
		return f
	case 3:
		return s
	case 4:
		return i%2 == 0
	default:
		return wire.List{i, s}
	}
}

func FuzzConstraintMatches(f *testing.F) {
	// Seeds: same-kind and mixed-kind comparisons for every operator,
	// the ErrBadConstraint paths (non-numeric ordering, bogus operator),
	// and exists on present/absent keys.
	f.Add("dpi", "==", uint8(0), int64(600), 0.0, "", uint8(0), int64(600), 0.0, "", true)
	f.Add("dpi", "!=", uint8(2), int64(0), 2.5, "", uint8(0), int64(2), 0.0, "", true)      // float vs int
	f.Add("dpi", ">=", uint8(0), int64(600), 0.0, "", uint8(1), int64(300), 0.0, "", true)  // int vs uint
	f.Add("dpi", "<=", uint8(2), int64(0), 1.5, "", uint8(2), int64(0), 2.5, "", true)      // float vs float
	f.Add("dpi", ">=", uint8(3), int64(0), 0.0, "lo", uint8(0), int64(1), 0.0, "", true)    // string vs int: bad
	f.Add("dpi", "<=", uint8(0), int64(1), 0.0, "", uint8(4), int64(0), 0.0, "", true)      // int vs bool: bad
	f.Add("dpi", ">=", uint8(5), int64(1), 0.0, "x", uint8(5), int64(2), 0.0, "y", true)    // list vs list: bad
	f.Add("dpi", "~=", uint8(0), int64(1), 0.0, "", uint8(0), int64(1), 0.0, "", true)      // bogus operator
	f.Add("color", "exists", uint8(0), int64(0), 0.0, "", uint8(0), int64(0), 0.0, "", false)
	f.Add("color", "exists", uint8(3), int64(0), 0.0, "on", uint8(3), int64(0), 0.0, "on", true)
	f.Add("", "==", uint8(3), int64(0), 0.0, "", uint8(3), int64(0), 0.0, "", true) // empty key/strings

	f.Fuzz(func(t *testing.T, key, op string,
		pk uint8, pi int64, pf float64, ps string,
		ck uint8, ci int64, cf float64, cs string,
		present bool) {

		props := map[string]wire.Value{}
		if present {
			props[key] = fuzzValue(pk, pi, pf, ps)
		}
		c := Constraint{Key: key, Op: ConstraintOp(op), Value: fuzzValue(ck, ci, cf, cs)}

		ok, err := c.matches(props)
		if err != nil {
			if !errors.Is(err, ErrBadConstraint) {
				t.Fatalf("matches returned a non-ErrBadConstraint error: %v", err)
			}
			if ok {
				t.Fatalf("matches returned true alongside error %v", err)
			}
			switch c.Op {
			case OpEq, OpNe, OpExists:
				t.Fatalf("kind-blind operator %q errored: %v", c.Op, err)
			}
			return
		}

		switch c.Op {
		case OpExists:
			if ok != present {
				t.Fatalf("exists = %v with present = %v", ok, present)
			}
		case OpEq, OpNe:
			flip := OpNe
			if c.Op == OpNe {
				flip = OpEq
			}
			other, oerr := Constraint{Key: key, Op: flip, Value: c.Value}.matches(props)
			if oerr != nil {
				t.Fatalf("%q errored where %q did not: %v", flip, c.Op, oerr)
			}
			if present && ok == other {
				t.Fatalf("== and != agree (%v) on a present key", ok)
			}
		case OpGe, OpLe:
			if !present {
				if ok {
					t.Fatalf("%q matched an absent key", c.Op)
				}
				return
			}
			// Ordering succeeded on a present key, so both sides are
			// numeric; comparison must be antisymmetric.
			v := props[key]
			cmp, cerr := compareNumeric(v, c.Value)
			rcmp, rerr := compareNumeric(c.Value, v)
			if cerr != nil || rerr != nil {
				t.Fatalf("compareNumeric errored after matches succeeded: %v %v", cerr, rerr)
			}
			if cmp != -rcmp {
				t.Fatalf("compareNumeric not antisymmetric: %d vs %d", cmp, rcmp)
			}
			if c.Op == OpGe && ok != (cmp >= 0) {
				t.Fatalf(">= returned %v with cmp %d", ok, cmp)
			}
			if c.Op == OpLe && ok != (cmp <= 0) {
				t.Fatalf("<= returned %v with cmp %d", ok, cmp)
			}
		default:
			// An unknown operator only reaches its error check when the
			// key is present; an absent key short-circuits to no-match.
			if present {
				t.Fatalf("unknown operator %q evaluated without error", c.Op)
			}
		}
	})
}

func FuzzAsFloat(f *testing.F) {
	f.Add(uint8(0), int64(-1), 0.0, "")
	f.Add(uint8(1), int64(1<<62), 0.0, "")
	f.Add(uint8(2), int64(0), 2.5, "")
	f.Add(uint8(3), int64(0), 0.0, "600")
	f.Add(uint8(4), int64(0), 0.0, "")
	f.Fuzz(func(t *testing.T, kind uint8, i int64, fl float64, s string) {
		v := fuzzValue(kind, i, fl, s)
		_, ok := asFloat(v)
		switch v.(type) {
		case int64, uint64, float64:
			if !ok {
				t.Fatalf("asFloat rejected numeric %T", v)
			}
		default:
			if ok {
				t.Fatalf("asFloat accepted non-numeric %T", v)
			}
		}
	})
}
