// Package bench is the evaluation harness: it regenerates the
// constructed experiment tables E1–E16 of EXPERIMENTS.md, each keyed to a
// claim of "The Challenge of ODP" (see DESIGN.md for the index).
//
// The paper itself has no tables or figures — it is a position paper —
// so these experiments check the *shapes* its claims predict: who wins,
// by roughly what factor, and where behaviour changes. Absolute numbers
// depend on the host; the harness prints what it measures.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"odp"
)

// Row is one measurement.
type Row struct {
	// Case names the configuration measured.
	Case string
	// Param is the swept parameter ("n=16"), empty when none.
	Param string
	// Metric names what was measured.
	Metric string
	// Value is the measurement.
	Value float64
	// Unit is the measurement unit.
	Unit string
}

// Experiment is one registered experiment.
type Experiment struct {
	// ID is the experiment identifier ("E1").
	ID string
	// Title is a short description.
	Title string
	// Claim cites the paper section whose prediction the experiment
	// checks.
	Claim string
	// Run executes the experiment. quick shrinks iteration counts for
	// smoke runs.
	Run func(quick bool) ([]Row, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Access-transparency invocation ladder", Claim: "§4.5: naive indirection is costly; engineering optimisations recover performance", Run: E1AccessLadder},
		{ID: "E2", Title: "Constant-object copying", Claim: "§4.5: objects with constant state can be copied in place of references", Run: E2ConstantCopy},
		{ID: "E3", Title: "Multiple results per outcome", Claim: "§5.1: multiple results per outcome minimise latency", Run: E3MultiResult},
		{ID: "E4", Title: "Interrogation vs announcement", Claim: "§5.1: announcements spawn activity without reply cost", Run: E4Announcement},
		{ID: "E5", Title: "Transactions under contention", Claim: "§5.2: generated concurrency control; deadlock detector prevents hangs", Run: E5Transactions},
		{ID: "E6", Title: "Replica groups and fail-over", Claim: "§5.3: ordered groups mask failure; active replication has no fail-over gap", Run: E6Groups},
		{ID: "E7", Title: "Relocation scaling", Claim: "§5.4: registering only changes scales; movers are found again", Run: E7Relocation},
		{ID: "E8", Title: "Passivation and recovery", Claim: "§5.5: passivation frees resources; checkpoint+log recovery restores exact state", Run: E8Passivation},
		{ID: "E9", Title: "Federation interception overhead", Claim: "§5.6: boundary translation and policing have bounded per-call cost", Run: E9Federation},
		{ID: "E10", Title: "Trading scalability", Claim: "§6: self-describing trading scales; federated import crosses links", Run: E10Trading},
		{ID: "E11", Title: "Security guard overhead", Claim: "§7.1: declaratively generated guards at modest cost", Run: E11Guards},
		{ID: "E12", Title: "Stream synchronisation", Claim: "§7.2: explicit binding with sync control bounds inter-stream skew", Run: E12Streams},
		{ID: "E13", Title: "Distributed garbage collection", Claim: "§7.3: lease-based GC reclaims exactly the unreferenced passive objects", Run: E13GC},
		{ID: "E14", Title: "At-most-once under loss", Claim: "§5.1: invocation survives loss without duplicate execution", Run: E14Loss},
		{ID: "E15", Title: "Selective transparency", Claim: "§3/§4.5: unused transparencies cost nothing; each is pay-as-you-go", Run: E15Selective},
		{ID: "E16", Title: "Write coalescing amortisation", Claim: "§5.5: transparency is an effect of the channel — per-packet overhead batched away without touching the computational model", Run: E16Batching},
		{ID: "E19", Title: "Trader offer store at scale", Claim: "§6: trading must scale to very large offer populations — sharded RCU snapshots keep import latency flat; admission control sheds overload instead of queueing it", Run: E19TraderScale},
		{ID: "E20", Title: "Federated trading over gateway topology", Claim: "§5.6/§6: domains federate through explicit gateway links — per-hop import cost is the gateway traversal, and per-domain rollups localise the trading work", Run: E20Swarm},
		{ID: "E21", Title: "Always-on observability overhead", Claim: "§5.5/§7: observability is a channel function — per-invocation latency histograms, a sampling recorder, and SLO flight recording cost nothing measurable on the hot path", Run: E21Observability},
	}
}

// Format renders rows as an aligned table.
func Format(rows []Row) string {
	headers := []string{"case", "param", "metric", "value", "unit"}
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, headers)
	for _, r := range rows {
		cells = append(cells, []string{
			r.Case, r.Param, r.Metric, formatValue(r.Value), r.Unit,
		})
	}
	widths := make([]int, len(headers))
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for rowIdx, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
		if rowIdx == 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// pair is a two-node test rig.
type pair struct {
	fabric *odp.Fabric
	server *odp.Platform
	client *odp.Platform
}

func newPair(profile odp.LinkProfile, opts ...odp.Option) (*pair, error) {
	f := odp.NewFabric(odp.WithSeed(1), odp.WithDefaultLink(profile))
	sep, err := f.Endpoint("server")
	if err != nil {
		return nil, err
	}
	server, err := odp.NewPlatform("server", sep, opts...)
	if err != nil {
		return nil, err
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		return nil, err
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(server.RelocRef))
	if err != nil {
		return nil, err
	}
	return &pair{fabric: f, server: server, client: client}, nil
}

func (p *pair) close() {
	_ = p.client.Close()
	_ = p.server.Close()
	_ = p.fabric.Close()
}

// newBatchedPair is newPair with write coalescing enabled on both
// nodes. Batching is negotiated in-band, so callers should run a few
// warm-up invocations before measuring (the first call carries the
// HELLO exchange).
func newBatchedPair(profile odp.LinkProfile, opts ...odp.Option) (*pair, error) {
	f := odp.NewFabric(odp.WithSeed(1), odp.WithDefaultLink(profile))
	sep, err := f.Endpoint("server")
	if err != nil {
		return nil, err
	}
	server, err := odp.NewPlatform("server", sep,
		append([]odp.Option{odp.WithBatching()}, opts...)...)
	if err != nil {
		return nil, err
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		return nil, err
	}
	client, err := odp.NewPlatform("client", cep,
		odp.WithBatching(), odp.WithRelocator(server.RelocRef))
	if err != nil {
		return nil, err
	}
	return &pair{fabric: f, server: server, client: client}, nil
}

// newTracedPair is newPair with the observability collector on both
// nodes — the client roots and propagates trace context, the server
// records dispatch spans — at the given sampling rate (0 keeps the
// machinery wired but dormant, which is what the unsampled-overhead
// benchmark measures).
func newTracedPair(profile odp.LinkProfile, sampleEvery uint64) (*pair, error) {
	f := odp.NewFabric(odp.WithSeed(1), odp.WithDefaultLink(profile))
	sep, err := f.Endpoint("server")
	if err != nil {
		return nil, err
	}
	server, err := odp.NewPlatform("server", sep,
		odp.WithTracing(odp.TraceSampleEvery(sampleEvery)))
	if err != nil {
		return nil, err
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		return nil, err
	}
	client, err := odp.NewPlatform("client", cep,
		odp.WithTracing(odp.TraceSampleEvery(sampleEvery)),
		odp.WithRelocator(server.RelocRef))
	if err != nil {
		return nil, err
	}
	return &pair{fabric: f, server: server, client: client}, nil
}

// timeOp measures the mean duration of n sequential executions of fn.
func timeOp(n int, fn func(i int) error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, fmt.Errorf("iteration %d: %w", i, err)
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// percentile returns the p-quantile (0..1) of ds.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func iters(quick bool, full int) int {
	if quick {
		if full > 50 {
			return full / 10
		}
		return full
	}
	return full
}
