package bench

import (
	"context"
	"fmt"
	"time"

	"odp"
)

// E9Federation measures the cost of a federation interceptor (§5.6): the
// same service invoked natively inside its own domain versus from the
// foreign domain through the gateway, which polices the crossing and
// re-marshals between the binary and textual representations. The claim's
// shape: the crossing costs roughly one extra invocation hop plus
// translation — bounded, not prohibitive.
func E9Federation(quick bool) ([]Row, error) {
	ctx := context.Background()
	fabA := odp.NewFabric(odp.WithSeed(3), odp.WithDefaultLink(odp.LAN))
	fabB := odp.NewFabric(odp.WithSeed(4), odp.WithDefaultLink(odp.LAN))
	defer fabA.Close()
	defer fabB.Close()

	mk := func(f *odp.Fabric, name string, opts ...odp.Option) (*odp.Platform, error) {
		ep, err := f.Endpoint(name)
		if err != nil {
			return nil, err
		}
		return odp.NewPlatform(name, ep, opts...)
	}
	clientA, err := mk(fabA, "client-a")
	if err != nil {
		return nil, err
	}
	defer clientA.Close()
	serverB, err := mk(fabB, "server-b", odp.WithCodec(odp.TextCodec{}))
	if err != nil {
		return nil, err
	}
	defer serverB.Close()
	clientB, err := mk(fabB, "client-b", odp.WithCodec(odp.TextCodec{}), odp.WithRelocator(serverB.RelocRef))
	if err != nil {
		return nil, err
	}
	defer clientB.Close()
	gwA, err := mk(fabA, "gw-a")
	if err != nil {
		return nil, err
	}
	defer gwA.Close()
	gwB, err := mk(fabB, "gw-b", odp.WithCodec(odp.TextCodec{}))
	if err != nil {
		return nil, err
	}
	defer gwB.Close()

	refB, err := serverB.Publish("svc", odp.Object{Servant: newCell(0)})
	if err != nil {
		return nil, err
	}
	gw := odp.NewGateway("gw", gwA, gwB, nil)
	proxy, err := gw.Export(refB, odp.SideB)
	if err != nil {
		return nil, err
	}

	n := iters(quick, 500)
	native, err := timeOp(n, func(i int) error {
		_, err := clientB.Bind(refB).WithQoS(odp.QoS{Timeout: 10 * time.Second}).Call(ctx, "add", int64(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	crossed, err := timeOp(n, func(i int) error {
		_, err := clientA.Bind(proxy).WithQoS(odp.QoS{Timeout: 10 * time.Second}).Call(ctx, "add", int64(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	return []Row{
		{Case: "native-in-domain", Metric: "latency", Value: float64(native.Microseconds()), Unit: "us/op"},
		{Case: "through-gateway", Metric: "latency", Value: float64(crossed.Microseconds()), Unit: "us/op"},
		{Case: "interception-overhead", Metric: "crossed / native", Value: float64(crossed) / float64(native), Unit: "x"},
	}, nil
}

// E10Trading measures the trading service (§6): import latency as the
// offer population grows, and federated imports across a chain of linked
// traders with context-relative qualification.
func E10Trading(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row

	requirement := cellTypeOnly("get")

	populations := []int{100, 1000, 10000}
	if quick {
		populations = []int{100, 1000}
	}
	for _, pop := range populations {
		p, err := newPair(odp.LinkProfile{}, odp.WithTrader("bench"))
		if err != nil {
			return nil, err
		}
		for i := 0; i < pop; i++ {
			// Offers of a different type pad the population; one in ten
			// matches.
			t := cellTypeOnly("get")
			if i%10 != 0 {
				t = odp.Type{Name: "Other", Ops: map[string]odp.Operation{
					"frob": {Outcomes: map[string][]odp.Desc{"ok": {}}},
				}}
			}
			if _, err := p.server.Trader.Advertise(t,
				odp.Ref{ID: fmt.Sprintf("o-%d", i), Endpoints: []string{"x"}},
				map[string]odp.Value{"i": int64(i)}); err != nil {
				p.close()
				return nil, err
			}
		}
		tc := odp.NewTraderClient(p.client, p.server.Trader.Ref())
		d, err := timeOp(iters(quick, 20), func(i int) error {
			_, err := tc.Import(ctx, odp.ImportSpec{Requirement: requirement, MaxMatches: 5})
			return err
		})
		p.close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Case: "import", Param: fmt.Sprintf("offers=%d", pop),
			Metric: "latency", Value: float64(d.Microseconds()), Unit: "us/op",
		})
	}

	// Federated chain: the offer sits k hops away.
	hops := []int{1, 2, 3}
	if quick {
		hops = []int{1, 2}
	}
	for _, k := range hops {
		f := odp.NewFabric(odp.WithSeed(5), odp.WithDefaultLink(odp.LAN))
		platforms := make([]*odp.Platform, k+1)
		ok := true
		for i := range platforms {
			ep, err := f.Endpoint(fmt.Sprintf("t%d", i))
			if err != nil {
				ok = false
				break
			}
			platforms[i], err = odp.NewPlatform(fmt.Sprintf("t%d", i), ep, odp.WithTrader(fmt.Sprintf("ctx%d", i)))
			if err != nil {
				ok = false
				break
			}
		}
		if !ok {
			_ = f.Close()
			return nil, fmt.Errorf("federated trader setup failed")
		}
		for i := 0; i < k; i++ {
			platforms[i].Trader.LinkTo(fmt.Sprintf("next%d", i+1), platforms[i+1].Trader.Ref())
		}
		if _, err := platforms[k].Trader.Advertise(cellTypeOnly("get"),
			odp.Ref{ID: "deep", Endpoints: []string{"x"}}, nil); err != nil {
			_ = f.Close()
			return nil, err
		}
		d, err := timeOp(iters(quick, 20), func(i int) error {
			offers, err := platforms[0].Trader.Import(ctx, odp.ImportSpec{Requirement: requirement, MaxHops: k})
			if err != nil {
				return err
			}
			if len(offers) != 1 {
				return fmt.Errorf("hop=%d found %d offers", k, len(offers))
			}
			return nil
		})
		for _, p := range platforms {
			_ = p.Close()
		}
		_ = f.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Case: "federated-import", Param: fmt.Sprintf("hops=%d", k),
			Metric: "latency", Value: float64(d.Microseconds()), Unit: "us/op",
		})
	}
	return rows, nil
}

// E11Guards measures the generated security guard (§7.1): plain,
// authenticated (HMAC + policy + replay window) and sealed
// (confidentiality via AES-GCM) invocations of the same interface.
func E11Guards(quick bool) ([]Row, error) {
	ctx := context.Background()
	n := iters(quick, 1000)
	var rows []Row

	p, err := newPair(odp.LinkProfile{})
	if err != nil {
		return nil, err
	}
	defer p.close()
	plainRef, err := p.server.Publish("plain", odp.Object{Servant: newCell(0)})
	if err != nil {
		return nil, err
	}
	p.server.Keys.Share("alice", []byte("bench-secret"))
	guardedRef, err := p.server.Publish("guarded", odp.Object{
		Servant: newCell(0),
		Env: odp.Env{Secured: &odp.SecureSpec{Policy: odp.Policy{Rules: []odp.Rule{
			{Principal: "alice", Op: "*", Allow: true},
		}}}},
	})
	if err != nil {
		return nil, err
	}

	d, err := timeOp(n, func(i int) error {
		_, err := p.client.Bind(plainRef).Call(ctx, "add", int64(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "plain", Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})

	alice := odp.NewSigner("alice", []byte("bench-secret"))
	d, err = timeOp(n, func(i int) error {
		_, err := p.client.Bind(guardedRef).WithSigner(alice).Call(ctx, "add", int64(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "authenticated", Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})

	sealed := odp.NewSigner("alice", []byte("bench-secret"))
	sealed.Seal = true
	d, err = timeOp(n, func(i int) error {
		_, err := p.client.Bind(guardedRef).WithSigner(sealed).Call(ctx, "add", int64(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "authenticated+sealed", Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})
	return rows, nil
}

// E12Streams measures stream interfaces (§7.2): frame throughput of an
// explicitly bound flow, and the inter-flow skew of two jittery flows
// with and without a sync group.
func E12Streams(quick bool) ([]Row, error) {
	frames := iters(quick, 2000)
	var rows []Row

	// Throughput of a single flow over a loopback link.
	{
		p, err := newPair(odp.LinkProfile{})
		if err != nil {
			return nil, err
		}
		received := make(chan struct{}, frames)
		rx, err := odp.NewStreamReceiver(p.client, func(odp.StreamSpec) (odp.Sink, error) {
			return odp.SinkFunc(func(odp.Frame) { received <- struct{}{} }), nil
		})
		if err != nil {
			p.close()
			return nil, err
		}
		b, err := odp.BindStream(p.server, rx.Ref(), odp.StreamSpec{Media: "data"})
		if err != nil {
			p.close()
			return nil, err
		}
		payload := make([]byte, 256)
		start := time.Now()
		for i := 0; i < frames; i++ {
			if err := b.Send(int64(i), payload); err != nil {
				p.close()
				return nil, err
			}
		}
		got := 0
		timeout := time.After(30 * time.Second)
	recvLoop:
		for got < frames {
			select {
			case <-received:
				got++
			case <-timeout:
				break recvLoop
			}
		}
		elapsed := time.Since(start)
		p.close()
		rows = append(rows,
			Row{Case: "flow-throughput", Param: fmt.Sprintf("frames=%d payload=256B", frames), Metric: "rate", Value: float64(got) / elapsed.Seconds(), Unit: "frames/s"},
			Row{Case: "flow-delivery", Param: fmt.Sprintf("frames=%d", frames), Metric: "delivered", Value: float64(got), Unit: "frames"},
		)
	}

	// Inter-flow skew with and without the sync controller, feeding the
	// group directly with a deterministic bursty arrival pattern.
	for _, sync := range []bool{false, true} {
		var skew int64
		if sync {
			g := odp.NewSyncGroup(20, func(string, odp.Frame) {})
			audio := g.AddFlow("audio")
			video := g.AddFlow("video")
			feedBursty(audio, video)
			skew = g.MaxObservedSkewMs()
		} else {
			var l = map[string]int64{}
			var w int64
			out := func(flow string, f odp.Frame) {
				l[flow] = f.TimestampMs
				if len(l) == 2 {
					d := l["audio"] - l["video"]
					if d < 0 {
						d = -d
					}
					if d > w {
						w = d
					}
				}
			}
			feedBursty(
				odp.SinkFunc(func(f odp.Frame) { out("audio", f) }),
				odp.SinkFunc(func(f odp.Frame) { out("video", f) }),
			)
			skew = w
		}
		name := "unsynchronised"
		if sync {
			name = "sync-group(20ms)"
		}
		rows = append(rows, Row{Case: name, Metric: "worst-skew", Value: float64(skew), Unit: "ms"})
	}
	return rows, nil
}

// feedBursty delivers audio promptly and video in 80ms bursts.
func feedBursty(audio, video odp.Sink) {
	for ts := int64(0); ts < 800; ts += 10 {
		audio.OnFrame(odp.Frame{TimestampMs: ts})
		if ts%80 == 70 {
			for v := ts - 70; v <= ts; v += 10 {
				video.OnFrame(odp.Frame{TimestampMs: v})
			}
		}
	}
}
