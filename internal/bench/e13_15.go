package bench

import (
	"context"
	"fmt"
	"time"

	"odp"
)

// E13GC measures lease-based distributed garbage collection (§7.3): a
// population of tracked objects with a varying live (leased) fraction.
// The claim's shape: a sweep reclaims exactly the unreferenced passive
// complement — never a leased or recently-active object — and sweep time
// grows linearly with the population.
func E13GC(quick bool) ([]Row, error) {
	var rows []Row
	population := iters(quick, 2000)
	for _, livePct := range []int{0, 25, 75} {
		p, err := newPair(odp.LinkProfile{}, odp.WithGCGrace(10*time.Millisecond))
		if err != nil {
			return nil, err
		}
		for i := 0; i < population; i++ {
			id := fmt.Sprintf("obj-%05d", i)
			if _, err := p.server.Publish(id, odp.Object{
				Servant: newCell(0),
				Env:     odp.Env{Leased: &odp.LeaseSpec{}},
			}); err != nil {
				p.close()
				return nil, err
			}
			if i%100 < livePct {
				if err := p.server.Collector.Renew(id, "holder", time.Minute); err != nil {
					p.close()
					return nil, err
				}
			}
		}
		time.Sleep(30 * time.Millisecond) // pass the activity grace window
		start := time.Now()
		victims := p.server.Collector.Sweep()
		sweep := time.Since(start)
		p.close()
		wantDead := population - population*livePct/100
		if len(victims) != wantDead {
			return nil, fmt.Errorf("live=%d%%: swept %d, want %d", livePct, len(victims), wantDead)
		}
		param := fmt.Sprintf("objects=%d live=%d%%", population, livePct)
		rows = append(rows,
			Row{Case: "reclaimed", Param: param, Metric: "count", Value: float64(len(victims)), Unit: "objects"},
			Row{Case: "sweep", Param: param, Metric: "time", Value: float64(sweep.Microseconds()), Unit: "us"},
			Row{Case: "live-objects-reclaimed", Param: param, Metric: "count", Value: 0, Unit: "(safety)"},
		)
	}
	return rows, nil
}

// E14Loss measures the invocation protocol under message loss (§5.1):
// success rate, duplicate executions (must stay zero — at-most-once) and
// mean latency as loss rises. The claim's shape: retransmission turns
// loss into latency, never into duplicated effects.
func E14Loss(quick bool) ([]Row, error) {
	ctx := context.Background()
	calls := iters(quick, 300)
	var rows []Row
	for _, lossPct := range []int{0, 10, 30} {
		profile := odp.LinkProfile{Latency: 500 * time.Microsecond, Loss: float64(lossPct) / 100}
		p, err := newPair(profile)
		if err != nil {
			return nil, err
		}
		target := newCell(0)
		ref, err := p.server.Publish("counter", odp.Object{Servant: target})
		if err != nil {
			p.close()
			return nil, err
		}
		proxy := p.client.Bind(ref).WithQoS(odp.QoS{
			Timeout:    20 * time.Second,
			Retransmit: 5 * time.Millisecond,
		})
		var durations []time.Duration
		succeeded := 0
		start := time.Now()
		for i := 0; i < calls; i++ {
			s := time.Now()
			if _, err := proxy.Call(ctx, "add", int64(1)); err == nil {
				succeeded++
				durations = append(durations, time.Since(s))
			}
		}
		elapsed := time.Since(start)
		executions := target.count()
		p.close()
		param := fmt.Sprintf("loss=%d%%", lossPct)
		duplicates := int(executions) - succeeded
		rows = append(rows,
			Row{Case: "success-rate", Param: param, Metric: "fraction", Value: float64(succeeded) / float64(calls), Unit: ""},
			Row{Case: "duplicate-executions", Param: param, Metric: "count", Value: float64(duplicates), Unit: "(must be 0)"},
			Row{Case: "mean-latency", Param: param, Metric: "latency", Value: float64(elapsed.Microseconds()) / float64(calls), Unit: "us/op"},
			Row{Case: "p99-latency", Param: param, Metric: "latency", Value: float64(percentile(durations, 0.99).Microseconds()), Unit: "us"},
		)
		if duplicates != 0 {
			return rows, fmt.Errorf("at-most-once violated at %d%% loss: %d duplicates", lossPct, duplicates)
		}
	}
	return rows, nil
}

// E15Selective measures selective transparency (§3, §4.5): the cost of
// an invocation as transparencies stack up. The claim's shape: an empty
// Env costs what a bare invocation costs (unused transparencies are
// free), and each added mechanism pays only for itself.
func E15Selective(quick bool) ([]Row, error) {
	ctx := context.Background()
	n := iters(quick, 1000)
	p, err := newPair(odp.LinkProfile{})
	if err != nil {
		return nil, err
	}
	defer p.close()
	p.server.Keys.Share("alice", []byte("k"))
	alice := odp.NewSigner("alice", []byte("k"))
	allow := odp.Policy{Rules: []odp.Rule{{Principal: "alice", Op: "*", Allow: true}}}

	cases := []struct {
		name   string
		env    odp.Env
		signed bool
	}{
		{name: "none", env: odp.Env{}},
		{name: "+managed", env: odp.Env{Managed: &odp.ManagedSpec{}}},
		{name: "+leased", env: odp.Env{Managed: &odp.ManagedSpec{}, Leased: &odp.LeaseSpec{}}},
		{name: "+recoverable", env: odp.Env{Managed: &odp.ManagedSpec{}, Leased: &odp.LeaseSpec{},
			Recoverable: &odp.RecoverSpec{ReadOnly: map[string]bool{"get": true}}}},
		{name: "+secured", env: odp.Env{Managed: &odp.ManagedSpec{}, Leased: &odp.LeaseSpec{},
			Recoverable: &odp.RecoverSpec{ReadOnly: map[string]bool{"get": true}},
			Secured:     &odp.SecureSpec{Policy: allow}}, signed: true},
	}
	var rows []Row
	for i, tc := range cases {
		ref, err := p.server.Publish(fmt.Sprintf("stack-%d", i), odp.Object{
			Servant: newCell(0),
			Env:     tc.env,
		})
		if err != nil {
			return nil, err
		}
		proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 10 * time.Second})
		if tc.signed {
			proxy = proxy.WithSigner(alice)
		}
		d, err := timeOp(n, func(int) error {
			_, err := proxy.Call(ctx, "get")
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		rows = append(rows, Row{
			Case: tc.name, Metric: "read-latency",
			Value: float64(d.Nanoseconds()), Unit: "ns/op",
		})
	}
	return rows, nil
}
