package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"odp"
)

// E16Batching measures the write-coalescing layer (transport.Coalescer)
// against the §5.5 claim that transparency — here, of channel cost — is
// an effect of the channel, not the computational model: the same
// proxies and servants run unchanged while the channel amortises
// per-packet overhead across concurrent senders.
//
// The experiment's shape: with one sender batching can help only a
// little (there is rarely anything to coalesce with), but as senders
// multiply the batched channel carries materially fewer datagrams per
// invocation (pkts/op falls, frames/batch rises) while the plain
// channel pays full per-packet price for every message. Per-invocation
// latency under load improves correspondingly.
func E16Batching(quick bool) ([]Row, error) {
	ctx := context.Background()
	perSender := iters(quick, 400)
	var rows []Row
	for _, batched := range []bool{false, true} {
		for _, senders := range []int{1, 4, 16} {
			var (
				p   *pair
				err error
			)
			if batched {
				p, err = newBatchedPair(odp.LinkProfile{})
			} else {
				p, err = newPair(odp.LinkProfile{})
			}
			if err != nil {
				return nil, err
			}
			ref, err := p.server.Publish("cell", odp.Object{Servant: newCell(0)})
			if err != nil {
				p.close()
				return nil, err
			}
			proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
			// Warm up: settles the batching negotiation (HELLO
			// exchange) and any lazy binding, so both modes measure
			// steady state.
			for i := 0; i < 16; i++ {
				if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
					p.close()
					return nil, err
				}
			}

			base := p.fabric.Stats()
			errs := make(chan error, senders)
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < senders; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perSender; i++ {
						if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			select {
			case err := <-errs:
				p.close()
				return nil, err
			default:
			}
			after := p.fabric.Stats()

			mode := "plain"
			if batched {
				mode = "batched"
			}
			param := fmt.Sprintf("senders=%d", senders)
			ops := float64(senders * perSender)
			rows = append(rows,
				Row{Case: mode, Param: param, Metric: "latency", Value: float64(elapsed.Nanoseconds()) / ops, Unit: "ns/op"},
				Row{Case: mode, Param: param, Metric: "datagrams", Value: float64(after.Sent-base.Sent) / ops, Unit: "pkts/op"})
			if bst, ok := p.client.BatchStats(); ok && bst.BatchesSent > 0 {
				rows = append(rows, Row{Case: mode, Param: param, Metric: "frames-per-batch",
					Value: float64(bst.FramesBatched) / float64(bst.BatchesSent), Unit: "frames"})
			}
			p.close()
		}
	}
	return rows, nil
}
