package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"odp"
)

// E5Transactions measures transactional throughput as contention rises
// (§5.2): the same transfer workload over a large account pool (rare
// conflicts) and a tiny one (constant conflicts). The generated
// concurrency control serialises conflicting transfers; the deadlock
// detector keeps the high-contention case live instead of hung — the
// claim is liveness at a throughput cost, not free parallelism.
func E5Transactions(quick bool) ([]Row, error) {
	ctx := context.Background()
	transfers := iters(quick, 200)
	var rows []Row
	for _, pool := range []int{16, 2} {
		// LAN latency widens the lock-hold window so contention is real.
		p, err := newPair(odp.LAN, odp.WithLockWait(500*time.Millisecond))
		if err != nil {
			return nil, err
		}
		refs := make([]odp.Ref, pool)
		for i := range refs {
			ref, err := p.server.Publish(fmt.Sprintf("acct-%d", i), odp.Object{
				Servant: newCell(0),
				Env: odp.Env{Atomic: &odp.AtomicSpec{
					Separation: odp.Separation{ReadOnly: map[string]bool{"get": true}},
				}},
			})
			if err != nil {
				p.close()
				return nil, err
			}
			refs[i] = ref
		}
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			committed int
			aborted   int
		)
		start := time.Now()
		workers := 4
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < transfers/workers; i++ {
					from := rng.Intn(pool)
					to := (from + 1 + rng.Intn(pool-1)) % pool
					tx := p.client.Coordinator.Begin()
					_, _, err := tx.Invoke(ctx, refs[from], "add", []odp.Value{int64(-1)})
					if err == nil {
						_, _, err = tx.Invoke(ctx, refs[to], "add", []odp.Value{int64(1)})
					}
					if err != nil {
						_ = tx.Abort(ctx)
						mu.Lock()
						aborted++
						mu.Unlock()
						continue
					}
					if err := tx.Commit(ctx); err != nil {
						mu.Lock()
						aborted++
						mu.Unlock()
						continue
					}
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		deadlocks := p.server.Locks.Deadlocks()
		p.close()
		param := fmt.Sprintf("accounts=%d", pool)
		rows = append(rows,
			Row{Case: "committed", Param: param, Metric: "throughput", Value: float64(committed) / elapsed.Seconds(), Unit: "txn/s"},
			Row{Case: "aborted", Param: param, Metric: "count", Value: float64(aborted), Unit: "txns"},
			Row{Case: "deadlocks-broken", Param: param, Metric: "count", Value: float64(deadlocks), Unit: ""},
		)
	}
	return rows, nil
}

// E6Groups measures replica groups (§5.3): invocation latency as the
// group grows (ordering costs one multicast round), and the fail-over
// gap after killing the sequencer — near zero for active replication,
// a visible replay window for hot standby.
func E6Groups(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row
	sizes := []int{1, 3, 5}
	if quick {
		sizes = []int{1, 3}
	}
	for _, size := range sizes {
		lat, err := groupLatency(ctx, size, iters(quick, 200))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Case: "active-invoke", Param: fmt.Sprintf("members=%d", size),
			Metric: "latency", Value: float64(lat.Microseconds()), Unit: "us/op",
		})
	}
	for _, tc := range []struct {
		name string
		mode odp.ReplicaSpec
	}{
		{"active", odp.ReplicaSpec{Mode: odp.ModeActive}},
		{"hot-standby", odp.ReplicaSpec{Mode: odp.ModeStandby}},
	} {
		window, err := groupFailover(ctx, tc.mode, iters(quick, 20))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Case: tc.name + "-failover", Param: "members=3",
			Metric: "unavailability", Value: float64(window.Milliseconds()), Unit: "ms",
		})
	}
	return rows, nil
}

type groupRig struct {
	fabric    *odp.Fabric
	platforms []*odp.Platform
	rep       *odp.Replicated
	client    *odp.Platform
}

func buildGroup(size int, spec odp.ReplicaSpec) (*groupRig, error) {
	f := odp.NewFabric(odp.WithSeed(2), odp.WithDefaultLink(odp.LAN))
	rig := &groupRig{fabric: f}
	for i := 0; i < size; i++ {
		ep, err := f.Endpoint(fmt.Sprintf("m%d", i))
		if err != nil {
			rig.close()
			return nil, err
		}
		p, err := odp.NewPlatform(fmt.Sprintf("m%d", i), ep)
		if err != nil {
			rig.close()
			return nil, err
		}
		rig.platforms = append(rig.platforms, p)
	}
	spec.GroupID = "bench"
	if spec.HeartbeatInterval == 0 {
		spec.HeartbeatInterval = 20 * time.Millisecond
	}
	if spec.FailureTimeout == 0 {
		spec.FailureTimeout = 150 * time.Millisecond
	}
	rep, err := odp.PublishReplicated(rig.platforms, spec, func() odp.Servant { return newCell(0) })
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.rep = rep
	cep, err := f.Endpoint("client")
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.client, err = odp.NewPlatform("client", cep, odp.WithRelocator(rig.platforms[0].RelocRef))
	if err != nil {
		rig.close()
		return nil, err
	}
	return rig, nil
}

func (r *groupRig) close() {
	if r.rep != nil {
		r.rep.Stop()
	}
	if r.client != nil {
		_ = r.client.Close()
	}
	for _, p := range r.platforms {
		_ = p.Close()
	}
	_ = r.fabric.Close()
}

// groupEndpoints gathers every member's current view endpoints.
func (r *groupRig) groupRef() odp.Ref {
	ref := r.rep.Ref()
	seen := map[string]bool{}
	for _, ep := range ref.Endpoints {
		seen[ep] = true
	}
	for _, m := range r.rep.Members[1:] {
		for _, ep := range m.GroupRef().Endpoints {
			if !seen[ep] {
				seen[ep] = true
				ref.Endpoints = append(ref.Endpoints, ep)
			}
		}
	}
	return ref
}

func groupLatency(ctx context.Context, size, n int) (time.Duration, error) {
	rig, err := buildGroup(size, odp.ReplicaSpec{Mode: odp.ModeActive})
	if err != nil {
		return 0, err
	}
	defer rig.close()
	proxy := rig.client.Bind(rig.rep.Ref()).WithQoS(odp.QoS{Timeout: 10 * time.Second})
	return timeOp(n, func(i int) error {
		_, err := proxy.Call(ctx, "add", int64(1))
		return err
	})
}

// groupFailover warms a 3-member group up, kills the sequencer and
// reports the window from the kill until the next successful invocation.
func groupFailover(ctx context.Context, spec odp.ReplicaSpec, warm int) (time.Duration, error) {
	rig, err := buildGroup(3, spec)
	if err != nil {
		return 0, err
	}
	defer rig.close()
	ref := rig.groupRef()
	invoke := func() error {
		_, err := rig.client.Bind(ref).
			WithQoS(odp.QoS{Timeout: 300 * time.Millisecond}).
			Call(ctx, "add", int64(1))
		return err
	}
	for i := 0; i < warm; i++ {
		if err := invoke(); err != nil {
			return 0, fmt.Errorf("warmup %d: %w", i, err)
		}
	}
	rig.rep.Members[0].Stop()
	rig.fabric.Isolate(rig.platforms[0].Capsule.Addr(), true)
	killed := time.Now()
	deadline := killed.Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := invoke(); err == nil {
			return time.Since(killed), nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, fmt.Errorf("group never recovered")
}

// E7Relocation measures location transparency (§5.4). The claim's shape:
// (a) stationary interfaces generate zero relocator traffic no matter how
// many exist ("relocation mechanisms should only require the registration
// of changes"); (b) a migration under live load costs the clients one
// bounded latency spike, not failures; (c) a relocator lookup is a single
// cheap invocation regardless of how many stationary interfaces exist.
func E7Relocation(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row

	// (a) stationary population vs relocator load.
	stationary := iters(quick, 2000)
	p, err := newPair(odp.LinkProfile{})
	if err != nil {
		return nil, err
	}
	refs := make([]odp.Ref, stationary)
	for i := range refs {
		ref, err := p.server.Publish(fmt.Sprintf("s-%d", i), odp.Object{Servant: newCell(0)})
		if err != nil {
			p.close()
			return nil, err
		}
		refs[i] = ref
	}
	for i := 0; i < iters(quick, 500); i++ {
		if _, err := p.client.Bind(refs[i%stationary]).Call(ctx, "get"); err != nil {
			p.close()
			return nil, err
		}
	}
	binderStats := p.client.BinderStats()
	tableSize := p.server.RelocTable.Len()
	rows = append(rows,
		Row{Case: "stationary-interfaces", Param: fmt.Sprintf("n=%d", stationary), Metric: "relocator-entries", Value: float64(tableSize), Unit: "entries"},
		Row{Case: "stationary-invocations", Param: fmt.Sprintf("n=%d", stationary), Metric: "relocator-consultations", Value: float64(binderStats.Relocations), Unit: "lookups"},
	)

	// (c) relocator lookup cost with the table holding some movers.
	for i := 0; i < 100; i++ {
		p.server.RelocTable.Register(odp.Ref{ID: fmt.Sprintf("mover-%d", i), Endpoints: []string{"x"}, Epoch: 1})
	}
	d, err := timeOp(iters(quick, 500), func(i int) error {
		_, _, err := p.client.Capsule.Invoke(ctx, p.server.RelocRef, "lookup",
			[]odp.Value{fmt.Sprintf("mover-%d", i%100)})
		return err
	})
	p.close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "relocator-lookup", Param: "movers=100", Metric: "latency", Value: float64(d.Microseconds()), Unit: "us/op"})

	// (b) migration under live load: client-observed worst latency.
	mp, err := newPair(odp.LAN)
	if err != nil {
		return nil, err
	}
	defer mp.close()
	odp.RegisterFactory(mp.client, "Cell", func() odp.MovableServant { return newCell(0) })
	ref, err := mp.server.Publish("hot", odp.Object{
		Servant: newCell(0),
		Type:    cellTypeOnly("add", "get"),
		Env:     odp.Env{Movable: true},
	})
	if err != nil {
		return nil, err
	}
	var durations []time.Duration
	proxy := mp.client.Bind(ref).WithQoS(odp.QoS{Timeout: 10 * time.Second})
	total := iters(quick, 300)
	migrateAt := total / 2
	for i := 0; i < total; i++ {
		if i == migrateAt {
			if _, err := mp.server.Mover.Migrate(ctx, "hot", mp.client.Mover.AcceptorRef()); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			return nil, fmt.Errorf("invoke %d during migration: %w", i, err)
		}
		durations = append(durations, time.Since(start))
	}
	rows = append(rows,
		Row{Case: "migration-under-load", Param: fmt.Sprintf("invocations=%d", total), Metric: "p50-latency", Value: float64(percentile(durations, 0.5).Microseconds()), Unit: "us"},
		Row{Case: "migration-under-load", Param: fmt.Sprintf("invocations=%d", total), Metric: "max-latency", Value: float64(percentile(durations, 1.0).Microseconds()), Unit: "us"},
		Row{Case: "migration-under-load", Metric: "failed-invocations", Value: 0, Unit: "count"},
	)
	return rows, nil
}

// E8Passivation measures resource and failure transparency (§5.5):
// passivate/reactivate round trips across state sizes, and crash
// recovery time as the replayed interaction log grows.
func E8Passivation(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row

	// Passivation round trip vs state size.
	sizes := []int{1 << 10, 1 << 17}
	if quick {
		sizes = []int{1 << 10}
	}
	for _, size := range sizes {
		p, err := newPair(odp.LinkProfile{})
		if err != nil {
			return nil, err
		}
		odp.RegisterFactory(p.server, "Big", func() odp.MovableServant { return newBigState(0) })
		big := newBigState(size)
		ref, err := p.server.Publish("big", odp.Object{
			Servant: big,
			Type:    odp.Type{Name: "Big", Ops: map[string]odp.Operation{"size": {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}}, "poke": {Outcomes: map[string][]odp.Desc{"ok": {}}}}},
			Env:     odp.Env{Movable: true},
		})
		if err != nil {
			p.close()
			return nil, err
		}
		n := iters(quick, 50)
		d, err := timeOp(n, func(i int) error {
			if err := p.server.Mover.Passivate("big"); err != nil {
				return err
			}
			// The next invocation transparently reactivates.
			_, err := p.client.Bind(ref).Call(ctx, "size")
			return err
		})
		p.close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Case: "passivate+reactivate", Param: fmt.Sprintf("state=%dB", size),
			Metric: "round-trip", Value: float64(d.Microseconds()), Unit: "us",
		})
	}

	// Recovery time vs log length.
	logLens := []int{10, 200}
	if quick {
		logLens = []int{10}
	}
	for _, logLen := range logLens {
		p, err := newPair(odp.LinkProfile{})
		if err != nil {
			return nil, err
		}
		readOnly := map[string]bool{"get": true}
		ref, err := p.server.Publish("recov", odp.Object{
			Servant: newCell(0),
			Env:     odp.Env{Recoverable: &odp.RecoverSpec{ReadOnly: readOnly}},
		})
		if err != nil {
			p.close()
			return nil, err
		}
		for i := 0; i < logLen; i++ {
			if _, err := p.client.Bind(ref).Call(ctx, "add", int64(1)); err != nil {
				p.close()
				return nil, err
			}
		}
		// "Crash": recover on the client platform from the same store...
		// the pair shares no store, so recover locally on the server's
		// store via a fresh host on the client capsule is not possible;
		// instead time a local re-materialisation on the same platform.
		p.server.Capsule.Unexport("recov")
		odp.RegisterFactory(p.server, "Cell", func() odp.MovableServant { return newCell(0) })
		start := time.Now()
		if _, err := p.server.Mover.Recover(ctx, "recov", "Cell", readOnly, 1); err != nil {
			p.close()
			return nil, err
		}
		recovery := time.Since(start)
		out, err := p.client.Bind(odp.Ref{ID: "recov", Endpoints: []string{p.server.Capsule.Addr()}}).Call(ctx, "get")
		if err != nil {
			p.close()
			return nil, err
		}
		got, _ := out.Int(0)
		p.close()
		if got != int64(logLen) {
			return nil, fmt.Errorf("recovery lost state: %d != %d", got, logLen)
		}
		rows = append(rows, Row{
			Case: "crash-recovery", Param: fmt.Sprintf("log=%d ops", logLen),
			Metric: "recovery-time", Value: float64(recovery.Microseconds()), Unit: "us",
		})
	}
	return rows, nil
}
