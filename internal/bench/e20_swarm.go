package bench

import (
	"context"
	"fmt"
	"time"

	"odp"
)

// E20Swarm measures federated trading across a sparse gateway topology
// (§5.6/§6): a chain of administrative domains, each its own subnet with
// a fast intra-domain profile, joined only by explicit gateway links.
// Import latency is reported per hop count — each extra gateway adds one
// deterministic link traversal both ways — and the per-domain rollup
// (GatherDomains over WithDomain-tagged nodes) shows where the offers
// and the import work landed.
func E20Swarm(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row

	domains := 6
	offersPerDomain := 150
	iterations := 40
	hops := []int{0, 1, 3, 5}
	if quick {
		domains = 3
		offersPerDomain = 30
		iterations = 10
		hops = []int{0, 1, 2}
	}

	// No jitter anywhere: the experiment isolates topology cost, so the
	// per-hop latency step should be the gateway profile, exactly.
	intra := odp.LinkProfile{Latency: 50 * time.Microsecond}
	gateway := odp.LinkProfile{Latency: 1 * time.Millisecond}

	f := odp.NewFabric(odp.WithSeed(20))
	defer func() { _ = f.Close() }()

	domName := func(d int) string { return fmt.Sprintf("d%02d", d) }
	platforms := make([]*odp.Platform, domains)
	for d := 0; d < domains; d++ {
		dom := domName(d)
		f.AddSubnet(dom, intra)
		if d > 0 {
			f.LinkSubnets(domName(d-1), dom, gateway)
		}
		addr := dom + "/trader"
		ep, err := f.Endpoint(addr)
		if err != nil {
			return nil, err
		}
		f.JoinSubnet(addr, dom)
		platforms[d], err = odp.NewPlatform(addr, ep,
			odp.WithDomain(dom), odp.WithTrader(dom))
		if err != nil {
			return nil, err
		}
	}
	defer func() {
		for i := len(platforms) - 1; i >= 0; i-- {
			_ = platforms[i].Close()
		}
	}()
	for d := 0; d < domains-1; d++ {
		platforms[d].Trader.LinkTo("east", platforms[d+1].Trader.Ref())
	}

	// Every domain holds the same offer mix: one in ten offers matches
	// the requirement and carries its domain name as a property, so a
	// constrained import pins the match k hops away; the rest pad the
	// stores across other service types.
	for d := 0; d < domains; d++ {
		dom := domName(d)
		for i := 0; i < offersPerDomain; i++ {
			t := cellTypeOnly("get")
			if i%10 != 0 {
				t = odp.Type{Name: fmt.Sprintf("Pad%02d", i%16), Ops: map[string]odp.Operation{
					"frob": {Outcomes: map[string][]odp.Desc{"ok": {}}},
				}}
			}
			if _, err := platforms[d].Trader.Advertise(t,
				odp.Ref{ID: fmt.Sprintf("%s-o%d", dom, i), Endpoints: []string{"x"}},
				map[string]odp.Value{"dom": dom}); err != nil {
				return nil, err
			}
		}
	}

	requirement := cellTypeOnly("get")
	for _, k := range hops {
		if k > domains-1 {
			continue
		}
		target := domName(k)
		spec := odp.ImportSpec{
			Requirement: requirement,
			Constraints: []odp.Constraint{{Key: "dom", Op: odp.OpEq, Value: target}},
			MaxHops:     k,
			MaxMatches:  2,
		}
		lat := make([]time.Duration, iterations)
		for i := range lat {
			start := time.Now()
			offers, err := platforms[0].Trader.Import(ctx, spec)
			if err != nil {
				return nil, fmt.Errorf("hops=%d: %w", k, err)
			}
			if len(offers) == 0 {
				return nil, fmt.Errorf("hops=%d: no offers from %s", k, target)
			}
			lat[i] = time.Since(start)
		}
		param := fmt.Sprintf("hops=%d", k)
		rows = append(rows,
			Row{Case: "gateway-import", Param: param, Metric: "p50", Value: float64(percentile(lat, 0.50).Microseconds()), Unit: "us"},
			Row{Case: "gateway-import", Param: param, Metric: "p99", Value: float64(percentile(lat, 0.99).Microseconds()), Unit: "us"},
		)
	}

	// Per-domain rollup: one Gather sweep over the tagged platforms,
	// folded into domain.<name>.<key> sums. The offer populations are
	// uniform by construction; the import counters trace the query path
	// (every domain on the route to the farthest target served work).
	record := odp.GatherDomains(platforms...)
	for d := 0; d < domains; d++ {
		dom := domName(d)
		param := "domain=" + dom
		for _, metric := range []string{"trader.offers", "trader.imports"} {
			v, ok := recordNumeric(record["domain."+dom+"."+metric])
			if !ok {
				return nil, fmt.Errorf("rollup missing domain.%s.%s", dom, metric)
			}
			rows = append(rows, Row{
				Case: "rollup", Param: param, Metric: metric,
				Value: float64(v), Unit: "count",
			})
		}
	}
	return rows, nil
}

// recordNumeric widens a GatherDomains value to uint64.
func recordNumeric(v odp.Value) (uint64, bool) {
	switch n := v.(type) {
	case uint64:
		return n, true
	case int64:
		if n < 0 {
			return 0, false
		}
		return uint64(n), true
	case int:
		if n < 0 {
			return 0, false
		}
		return uint64(n), true
	}
	return 0, false
}
