package bench

import (
	"context"
	"fmt"
	"time"

	"odp"
	"odp/internal/capsule"
)

// E1AccessLadder measures the invocation cost ladder of §4.5: from a
// direct Go call, through the optimised co-located path, to the full
// protocol stack over LAN- and WAN-like links. The claim's shape: the
// naive full-stack path costs orders of magnitude more than a direct
// call; the direct-local-access optimisation recovers almost all of it
// for co-located interfaces; and once the network is real, its latency
// dominates everything the platform adds.
func E1AccessLadder(quick bool) ([]Row, error) {
	ctx := context.Background()
	n := iters(quick, 2000)
	nWAN := iters(quick, 200)
	var rows []Row

	// (a) direct Go call on the servant, no platform at all.
	servant := newCell(0)
	d, err := timeOp(n, func(i int) error {
		_, _, err := servant.Dispatch(ctx, "add", []odp.Value{int64(1)})
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "direct-go-call", Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})

	// (b) co-located ADT invocation with the optimisation on.
	p, err := newPair(odp.LinkProfile{})
	if err != nil {
		return nil, err
	}
	defer p.close()
	ref, err := p.server.Publish("cell", odp.Object{Servant: newCell(0)})
	if err != nil {
		return nil, err
	}
	proxyLocal := p.server.Bind(ref)
	d, err = timeOp(n, func(i int) error {
		_, err := proxyLocal.Call(ctx, "add", int64(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "co-located-optimised", Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})

	// (c) co-located but forced through the full protocol stack — the
	// "simplistic implementation" the paper warns about.
	d, err = timeOp(n, func(i int) error {
		_, _, err := p.server.Capsule.Invoke(ctx, ref, "add", []odp.Value{int64(1)}, capsule.ForceRemote())
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Case: "co-located-full-stack", Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})

	// (d,e,f) remote over loopback / LAN / WAN profiles.
	for _, tc := range []struct {
		name    string
		profile odp.LinkProfile
		iters   int
	}{
		{"remote-loopback", odp.LinkProfile{}, n},
		{"remote-lan", odp.LAN, iters(quick, 500)},
		{"remote-wan", odp.WAN, nWAN},
	} {
		rp, err := newPair(tc.profile)
		if err != nil {
			return nil, err
		}
		rref, err := rp.server.Publish("cell", odp.Object{Servant: newCell(0)})
		if err != nil {
			rp.close()
			return nil, err
		}
		proxy := rp.client.Bind(rref).WithQoS(odp.QoS{Timeout: 10 * time.Second})
		d, err := timeOp(tc.iters, func(i int) error {
			_, err := proxy.Call(ctx, "add", int64(1))
			return err
		})
		rp.close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Case: tc.name, Metric: "latency", Value: float64(d.Nanoseconds()), Unit: "ns/op"})
	}
	return rows, nil
}

// E2ConstantCopy measures the §4.5 constant-object optimisation: a 100-
// element immutable catalogue read k times, either through by-reference
// remote access on every read, or copied once and read locally
// thereafter ("the copy will behave identically to the original").
func E2ConstantCopy(quick bool) ([]Row, error) {
	ctx := context.Background()
	p, err := newPair(odp.LAN)
	if err != nil {
		return nil, err
	}
	defer p.close()
	const items = 100
	ref, err := p.server.Publish("catalogue", odp.Object{Servant: newCell(items)})
	if err != nil {
		return nil, err
	}
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 10 * time.Second})
	reads := iters(quick, 500)

	// By reference: every read crosses the network.
	start := time.Now()
	for i := 0; i < reads; i++ {
		if _, err := proxy.Call(ctx, "item", int64(i%items)); err != nil {
			return nil, err
		}
	}
	byRef := time.Since(start)

	// By copy: one bulk fetch, then local access — legal because the
	// catalogue's state is constant.
	start = time.Now()
	out, err := proxy.Call(ctx, "items", int64(0), int64(items))
	if err != nil {
		return nil, err
	}
	local := out.Results
	var sink int
	for i := 0; i < reads; i++ {
		sink += len(local[i%items].(string))
	}
	byCopy := time.Since(start)
	_ = sink

	return []Row{
		{Case: "by-reference", Param: fmt.Sprintf("reads=%d", reads), Metric: "total", Value: float64(byRef.Microseconds()), Unit: "us"},
		{Case: "by-copy", Param: fmt.Sprintf("reads=%d", reads), Metric: "total", Value: float64(byCopy.Microseconds()), Unit: "us"},
		{Case: "speedup", Param: "", Metric: "by-ref / by-copy", Value: float64(byRef) / float64(byCopy), Unit: "x"},
	}, nil
}

// E3MultiResult measures §5.1's rationale for multi-result outcomes:
// fetching k items as one call with k results versus k calls of one
// result each, over a WAN-like 5 ms path. "Without this facility the
// client would have to call the server over and over again."
func E3MultiResult(quick bool) ([]Row, error) {
	ctx := context.Background()
	p, err := newPair(odp.WAN)
	if err != nil {
		return nil, err
	}
	defer p.close()
	const items = 64
	ref, err := p.server.Publish("store", odp.Object{Servant: newCell(items)})
	if err != nil {
		return nil, err
	}
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 10 * time.Second})

	ks := []int{1, 4, 16, 64}
	if quick {
		ks = []int{1, 16}
	}
	var rows []Row
	for _, k := range ks {
		// k calls, one result each.
		start := time.Now()
		for i := 0; i < k; i++ {
			if _, err := proxy.Call(ctx, "item", int64(i)); err != nil {
				return nil, err
			}
		}
		many := time.Since(start)
		// one call, k results.
		start = time.Now()
		if _, err := proxy.Call(ctx, "items", int64(0), int64(k)); err != nil {
			return nil, err
		}
		one := time.Since(start)
		rows = append(rows,
			Row{Case: "k-calls-of-1", Param: fmt.Sprintf("k=%d", k), Metric: "total", Value: float64(many.Milliseconds()), Unit: "ms"},
			Row{Case: "1-call-of-k", Param: fmt.Sprintf("k=%d", k), Metric: "total", Value: float64(one.Milliseconds()), Unit: "ms"},
		)
	}
	return rows, nil
}

// E4Announcement compares interrogation and announcement throughput
// (§5.1): the request-only structure has no reply to wait for.
func E4Announcement(quick bool) ([]Row, error) {
	ctx := context.Background()
	p, err := newPair(odp.LAN)
	if err != nil {
		return nil, err
	}
	defer p.close()
	target := newCell(0)
	ref, err := p.server.Publish("sink", odp.Object{Servant: target})
	if err != nil {
		return nil, err
	}
	n := iters(quick, 500)
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 10 * time.Second})

	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			return nil, err
		}
	}
	interrogations := time.Since(start)

	start = time.Now()
	for i := 0; i < n; i++ {
		if err := proxy.Announce("note"); err != nil {
			return nil, err
		}
	}
	issued := time.Since(start)
	// Wait for delivery so the comparison is fair end to end.
	deadline := time.Now().Add(10 * time.Second)
	for target.count() < int64(2*n) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	delivered := time.Since(start)

	return []Row{
		{Case: "interrogation", Param: fmt.Sprintf("n=%d", n), Metric: "throughput", Value: float64(n) / interrogations.Seconds(), Unit: "ops/s"},
		{Case: "announcement-issue", Param: fmt.Sprintf("n=%d", n), Metric: "throughput", Value: float64(n) / issued.Seconds(), Unit: "ops/s"},
		{Case: "announcement-delivered", Param: fmt.Sprintf("n=%d", n), Metric: "throughput", Value: float64(n) / delivered.Seconds(), Unit: "ops/s"},
	}, nil
}
