package bench

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"odp"
)

// cell is the standard measurable servant: a snapshot-capable int cell
// with a batch read for E3.
type cell struct {
	mu    sync.Mutex
	n     int64
	items []string
}

func newCell(items int) *cell {
	c := &cell{}
	c.items = make([]string, items)
	for i := range c.items {
		c.items[i] = fmt.Sprintf("item-%04d-%s", i, strings.Repeat("x", 24))
	}
	return c
}

func (c *cell) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "add":
		c.n += args[0].(int64)
		return "ok", []odp.Value{c.n}, nil
	case "get":
		return "ok", []odp.Value{c.n}, nil
	case "item":
		i := args[0].(int64)
		return "ok", []odp.Value{c.items[i]}, nil
	case "items":
		from, to := args[0].(int64), args[1].(int64)
		out := make([]odp.Value, 0, to-from)
		for i := from; i < to; i++ {
			out = append(out, c.items[i])
		}
		return "ok", out, nil
	case "note":
		// announcement target
		c.n++
		return "", nil, nil
	default:
		return "", nil, fmt.Errorf("cell: no op %q", op)
	}
}

func (c *cell) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(c.n))
	return buf, nil
}

func (c *cell) Restore(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = int64(binary.BigEndian.Uint64(data))
	return nil
}

func (c *cell) count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

var cellType = odp.Type{
	Name: "Cell",
	Ops: map[string]odp.Operation{
		"add":   {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		"get":   {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		"item":  {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.String}}},
		"items": {Args: []odp.Desc{odp.Int, odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {}}},
		"note":  {Args: []odp.Desc{}, Announcement: true},
	},
}

// cellTypeNoItems omits the variadic-result "items" op (whose outcome
// arity varies and cannot be statically declared) for typed publishes.
func cellTypeOnly(ops ...string) odp.Type {
	t := odp.Type{Name: "Cell", Ops: map[string]odp.Operation{}}
	for _, op := range ops {
		t.Ops[op] = cellType.Ops[op]
	}
	return t
}

// bigState is a servant with a tunable amount of state, for E8.
type bigState struct {
	mu   sync.Mutex
	data []byte
}

func newBigState(size int) *bigState {
	b := &bigState{data: make([]byte, size)}
	for i := range b.data {
		b.data[i] = byte(i)
	}
	return b
}

func (b *bigState) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch op {
	case "size":
		return "ok", []odp.Value{int64(len(b.data))}, nil
	case "poke":
		b.data[0]++
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("bigState: no op %q", op)
	}
}

func (b *bigState) Snapshot() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp, nil
}

func (b *bigState) Restore(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data = append([]byte(nil), data...)
	return nil
}
