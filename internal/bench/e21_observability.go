package bench

import (
	"context"
	"fmt"
	"time"

	"odp"
)

// E21Observability measures the always-on observability layer: the
// latency histograms recorded on every invocation (there is no sampling
// knob — the claim is that recording is free), the metrics recorder
// sampling Gather on a timer while traffic flies, and the flight
// recorder turning an SLO breach into a retained black-box report.
//
// Four shapes are checked: (1) the packed loopback with a live
// recorder+SLO pipeline costs the same as without one; (2) the
// histogram's own quantile estimate tracks the wall-clock percentiles
// within its log-bucket resolution (a factor of two); (3) a full Gather
// — six histogram folds plus quantiles — and a Series rate computation
// are microsecond-scale, cheap enough to sample at high rate; (4) a
// zero-progress stall is captured as a bounded, rendered black-box
// report without any operator in the loop.
func E21Observability(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row
	calls := iters(quick, 4000)
	gathers := iters(quick, 2000)

	drive := func(p *pair) ([]time.Duration, error) {
		proxy, err := warmPackedLoopback(p)
		if err != nil {
			return nil, err
		}
		lat := make([]time.Duration, calls)
		for i := range lat {
			start := time.Now()
			if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
				return nil, err
			}
			lat[i] = time.Since(start)
		}
		return lat, nil
	}

	// Baseline: histograms record (they always do), but no recorder
	// samples and no rules watch.
	base, err := newBatchedPair(odp.LinkProfile{})
	if err != nil {
		return nil, err
	}
	defer base.close()
	lat, err := drive(base)
	if err != nil {
		return nil, err
	}
	param := fmt.Sprintf("calls=%d", calls)
	rows = append(rows,
		Row{Case: "loopback", Param: param, Metric: "p50", Value: float64(percentile(lat, 0.50).Microseconds()), Unit: "us"},
		Row{Case: "loopback", Param: param, Metric: "p99", Value: float64(percentile(lat, 0.99).Microseconds()), Unit: "us"},
	)

	// Fidelity: the client's own call histogram, read back through the
	// folded Gather keys, against the wall-clock distribution it
	// recorded. Log buckets bound the error at 2x.
	g := base.client.Gather()
	if hp50, ok := g["rpc.client.call_p50"].(float64); ok {
		rows = append(rows, Row{Case: "hist-fidelity", Param: param, Metric: "hist-p50", Value: hp50, Unit: "us"})
	} else {
		return nil, fmt.Errorf("rpc.client.call_p50 missing from Gather: %v", g["rpc.client.call_count"])
	}
	if hp99, ok := g["rpc.client.call_p99"].(float64); ok {
		rows = append(rows, Row{Case: "hist-fidelity", Param: param, Metric: "hist-p99", Value: hp99, Unit: "us"})
	}

	// Monitored: the recorder samples Gather 500 times a second and two
	// SLO rules evaluate every window while the same traffic flies. The
	// ceiling is set where it cannot trip — its cost is what is being
	// measured — and the stall rule is primed to fire once the loop
	// stops.
	mon, err := newBatchedPair(odp.LinkProfile{},
		odp.WithRecorder(2*time.Millisecond),
		odp.WithFlightRecorder(
			odp.CeilingRule("dispatch-p99", "rpc.server.dispatch_p99", 10e6),
			odp.StallRule("no-progress", "rpc.server.requests", 3),
		))
	if err != nil {
		return nil, err
	}
	defer mon.close()
	lat, err = drive(mon)
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		Row{Case: "loopback+recorder", Param: param, Metric: "p50", Value: float64(percentile(lat, 0.50).Microseconds()), Unit: "us"},
		Row{Case: "loopback+recorder", Param: param, Metric: "p99", Value: float64(percentile(lat, 0.99).Microseconds()), Unit: "us"},
	)

	// Read-side cost on the warm, fully-instrumented server: a Gather
	// folds six latency histograms and recomputes their quantiles; a
	// Series diffs the newest recorder samples into rates.
	start := time.Now()
	for i := 0; i < gathers; i++ {
		_ = mon.server.Gather()
	}
	rows = append(rows, Row{
		Case: "gather", Param: fmt.Sprintf("n=%d", gathers), Metric: "mean",
		Value: float64(time.Since(start).Microseconds()) / float64(gathers), Unit: "us",
	})
	rec := mon.server.Recorder()
	start = time.Now()
	for i := 0; i < gathers; i++ {
		_ = rec.Series()
	}
	rows = append(rows, Row{
		Case: "series", Param: fmt.Sprintf("n=%d", gathers), Metric: "mean",
		Value: float64(time.Since(start).Microseconds()) / float64(gathers), Unit: "us",
	})

	// Anomaly capture: traffic has stopped, so the requests counter sits
	// still and the stall rule must breach within a few windows. The
	// report ring is bounded, and each retained report is already
	// rendered — the black box survives the process that crashed it.
	deadline := time.Now().Add(5 * time.Second)
	for len(mon.server.Flight().Reports()) == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("stall breach not captured within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	reps := mon.server.Flight().Reports()
	last := reps[len(reps)-1]
	rows = append(rows,
		Row{Case: "blackbox", Param: "rule=" + last.Rule.Name, Metric: "retained", Value: float64(len(reps)), Unit: "reports"},
		Row{Case: "blackbox", Param: "rule=" + last.Rule.Name, Metric: "report-size", Value: float64(len(last.Format())), Unit: "bytes"},
	)
	return rows, nil
}

// warmPackedLoopback binds the standard cell servant and spins until the
// in-band HELLO exchange has upgraded the pair to the packed codec, so
// measurements see only the steady state.
func warmPackedLoopback(p *pair) (*odp.Proxy, error) {
	ref, err := p.server.Publish("cell", odp.Object{Servant: newCell(0)})
	if err != nil {
		return nil, err
	}
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			return nil, err
		}
		if n, _ := p.client.Gather()["rpc.client.packed_upgrades"].(uint64); n > 0 {
			return proxy, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("packed codec not negotiated within warm-up deadline")
		}
	}
}
