package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"odp"
)

// E19TraderScale measures the sharded trader offer store (§6) at scale:
// import latency over populations from ten thousand to a million offers,
// with and without advertise/withdraw churn, plus server-side admission
// control shedding an overload instead of queueing it.
//
// The paper's claim is that trading must "scale to very large numbers of
// offers"; the store's answer is RCU — imports walk per-shard immutable
// snapshots with zero lock acquisitions, so p99 import latency should
// stay essentially flat in population for a bounded-match import, and
// churn should only cost the bounded snapshot-rebuild work.
func E19TraderScale(quick bool) ([]Row, error) {
	ctx := context.Background()
	var rows []Row

	requirement := cellTypeOnly("get")
	populations := []int{10_000, 100_000, 1_000_000}
	iterations := 200
	if quick {
		populations = []int{1_000, 10_000}
		iterations = 40
	}

	for _, pop := range populations {
		p, err := newPair(odp.LinkProfile{}, odp.WithTrader("bench"),
			// Bounded-staleness snapshots: churn defers rebuilds instead
			// of paying one on the first read after every write.
			odp.WithTraderSnapshotPolicy(50*time.Millisecond, 1<<16))
		if err != nil {
			return nil, err
		}
		tr := p.server.Trader
		// One in ten offers matches the requirement; the rest pad the
		// store across other service types (and therefore shards).
		for i := 0; i < pop; i++ {
			t := cellTypeOnly("get")
			if i%10 != 0 {
				t = odp.Type{Name: fmt.Sprintf("Pad%02d", i%32), Ops: map[string]odp.Operation{
					"frob": {Outcomes: map[string][]odp.Desc{"ok": {}}},
				}}
			}
			if _, err := tr.Advertise(t,
				odp.Ref{ID: fmt.Sprintf("o-%d", i), Endpoints: []string{"x"}},
				map[string]odp.Value{"i": int64(i)}); err != nil {
				p.close()
				return nil, err
			}
		}
		spec := odp.ImportSpec{Requirement: requirement, MaxMatches: 5}

		// Steady state: no writes, every lookup hits a current snapshot.
		if _, err := tr.Import(ctx, spec); err != nil { // publish snapshots
			p.close()
			return nil, err
		}
		// Settle the collector: the population build grows the heap by
		// hundreds of MB at 1M offers, and a concurrent mark still in
		// flight would tax the measured imports with assist work that
		// belongs to setup, not to the store.
		runtime.GC()
		lat := make([]time.Duration, iterations)
		for i := range lat {
			start := time.Now()
			if _, err := tr.Import(ctx, spec); err != nil {
				p.close()
				return nil, err
			}
			lat[i] = time.Since(start)
		}
		param := fmt.Sprintf("offers=%d", pop)
		rows = append(rows,
			Row{Case: "import-steady", Param: param, Metric: "p50", Value: float64(percentile(lat, 0.50).Microseconds()), Unit: "us"},
			Row{Case: "import-steady", Param: param, Metric: "p99", Value: float64(percentile(lat, 0.99).Microseconds()), Unit: "us"},
		)

		// Churn: every import races an advertise/withdraw pair, so
		// snapshots go stale continuously and the policy amortises the
		// rebuilds.
		churnID := ""
		for i := range lat {
			if churnID != "" {
				if err := tr.Withdraw(churnID); err != nil {
					p.close()
					return nil, err
				}
			}
			id, err := tr.Advertise(cellTypeOnly("get"),
				odp.Ref{ID: fmt.Sprintf("churn-%d", i), Endpoints: []string{"x"}}, nil)
			if err != nil {
				p.close()
				return nil, err
			}
			churnID = id
			start := time.Now()
			if _, err := tr.Import(ctx, spec); err != nil {
				p.close()
				return nil, err
			}
			lat[i] = time.Since(start)
		}
		rows = append(rows,
			Row{Case: "import-churn", Param: param, Metric: "p50", Value: float64(percentile(lat, 0.50).Microseconds()), Unit: "us"},
			Row{Case: "import-churn", Param: param, Metric: "p99", Value: float64(percentile(lat, 0.99).Microseconds()), Unit: "us"},
		)
		st := tr.Stats()
		rows = append(rows, Row{
			Case: "import-churn", Param: param, Metric: "rebuild-share",
			Value: 100 * float64(st.SnapshotRebuilds) / float64(st.SnapshotHits+st.StaleServes+st.SnapshotRebuilds),
			Unit:  "%lookups",
		})
		p.close()
	}

	// Admission control: a client hammering a budgeted server sees the
	// overload shed as ErrServerBusy, and a backoff-retrying client
	// still completes its work.
	p, err := newPair(odp.LinkProfile{},
		odp.WithAdmission(odp.AdmissionConfig{Rate: 2000, Burst: 16}))
	if err != nil {
		return nil, err
	}
	defer p.close()
	ref, err := p.server.Publish("cell", odp.Object{Servant: newCell(0)})
	if err != nil {
		return nil, err
	}
	calls := iters(quick, 400)
	var busy int
	for i := 0; i < calls; i++ {
		_, _, err := p.client.Capsule.Invoke(ctx, ref, "get", nil)
		switch {
		case err == nil:
		case errors.Is(err, odp.ErrServerBusy):
			busy++
		default:
			return nil, err
		}
	}
	rows = append(rows, Row{
		Case: "admission", Param: fmt.Sprintf("calls=%d", calls),
		Metric: "shed", Value: 100 * float64(busy) / float64(calls), Unit: "%calls",
	})
	retried := 0
	for i := 0; i < iters(quick, 50); i++ {
		_, _, err := p.client.Capsule.Invoke(ctx, ref, "get", nil,
			odp.WithBusyRetry(6, time.Millisecond))
		if err != nil {
			return nil, fmt.Errorf("backoff retry exhausted: %w", err)
		}
		retried++
	}
	rows = append(rows, Row{
		Case: "admission", Param: fmt.Sprintf("retried=%d", retried),
		Metric: "retry-success", Value: 100, Unit: "%calls",
	})
	return rows, nil
}
