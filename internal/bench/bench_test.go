package bench

import (
	"strings"
	"testing"
	"time"
)

func TestAllRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 19 {
		t.Fatalf("registered %d experiments, want 19", len(exps))
	}
	seen := make(map[string]bool)
	for i, e := range exps {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if !strings.Contains(e.Claim, "§") {
			t.Fatalf("%s claim lacks a paper section citation: %q", e.ID, e.Claim)
		}
	}
}

func TestFormatAligned(t *testing.T) {
	rows := []Row{
		{Case: "a", Param: "n=1", Metric: "latency", Value: 12345, Unit: "ns/op"},
		{Case: "much-longer-case", Metric: "throughput", Value: 1.5, Unit: "ops/s"},
	}
	out := Format(rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "case") || !strings.Contains(lines[0], "unit") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "12345") || !strings.Contains(out, "1.500") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestFormatValue(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{12345, "12345"},
		{1.5, "1.500"},
		{123.45, "123.5"},
		{0, "0"},
	}
	for _, tt := range tests {
		if got := formatValue(tt.give); got != tt.want {
			t.Errorf("formatValue(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	if got := percentile(ds, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile(ds, 1); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := percentile(ds, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// Input must not be mutated.
	if ds[0] != 5 {
		t.Fatal("percentile sorted the caller's slice")
	}
}

func TestIters(t *testing.T) {
	if got := iters(false, 1000); got != 1000 {
		t.Fatalf("full = %d", got)
	}
	if got := iters(true, 1000); got != 100 {
		t.Fatalf("quick = %d", got)
	}
	if got := iters(true, 20); got != 20 {
		t.Fatalf("quick small = %d", got)
	}
}
