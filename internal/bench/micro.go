package bench

import (
	"context"
	"runtime"
	"testing"
	"time"

	"odp"
)

// This file holds the hot-path micro-benchmarks shared by two callers:
// the repo-root Benchmark wrappers (so `go test -bench` still works) and
// cmd/odpbench's -record mode, which runs them through
// testing.Benchmark() and writes the BENCH_<seq>.json trajectory file.
// Keeping one definition means the number in the JSON is the number the
// benchmark prints — they cannot drift apart.

// MicroBenchmarks lists the recorded hot-path benchmarks in a stable
// order. Names match the root Benchmark functions minus the "Benchmark"
// prefix.
func MicroBenchmarks() []struct {
	Name string
	Fn   func(*testing.B)
} {
	return []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"E1DirectGoCall", MicroE1DirectGoCall},
		{"E1CoLocatedOptimised", MicroE1CoLocatedOptimised},
		{"E1RemoteLoopback", MicroE1RemoteLoopback},
		{"E1HistogramLoopback", MicroE1HistogramLoopback},
		{"E1BinaryLoopback", MicroE1BinaryLoopback},
		{"E1TracedLoopback", MicroE1TracedLoopback},
		{"E1TracedUnsampledLoopback", MicroE1TracedUnsampledLoopback},
		{"E1PipelinedLoopback", MicroE1PipelinedLoopback},
		{"E4Interrogation", MicroE4Interrogation},
		{"E4AnnouncementDrained", MicroE4Announcement},
		{"E4AnnounceConcurrent", MicroE4AnnounceConcurrent},
		{"E12FrameSend", MicroE12FrameSend},
		{"TraderImport10k", MicroTraderImport10k},
		{"TraderImport100k", MicroTraderImport100k},
		{"TraderChurn10k", MicroTraderChurn10k},
	}
}

// mustPair builds the standard two-node rig or aborts the benchmark.
func mustPair(b *testing.B, profile odp.LinkProfile) *pair {
	b.Helper()
	p, err := newPair(profile)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustPublish(b *testing.B, p *pair, id string, obj odp.Object) odp.Ref {
	b.Helper()
	ref, err := p.server.Publish(id, obj)
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

// MicroE1DirectGoCall is the floor of the E1 ladder: the servant invoked
// as a plain Go call, no platform at all.
func MicroE1DirectGoCall(b *testing.B) {
	servant := newCell(0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := servant.Dispatch(ctx, "add", []odp.Value{int64(1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1CoLocatedOptimised measures the §4.5 direct-local-access path:
// proxy and servant share a capsule, the dispatcher short-circuits codec
// and transport, arguments cross by copy only when mutable.
func MicroE1CoLocatedOptimised(b *testing.B) {
	p := mustPair(b, odp.LinkProfile{})
	defer p.close()
	ref := mustPublish(b, p, "cell", odp.Object{Servant: newCell(0)})
	proxy := p.server.Bind(ref)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1RemoteLoopback measures the full protocol stack — codec, rpc,
// simulated fabric — with zero network latency, so what remains is the
// platform's own per-invocation cost. The rig is the steady state a
// tuned deployment reaches: both nodes run write coalescing (no
// max-delay window, so serial sends take the direct scatter-gather
// path) and the HELLO exchange has negotiated the packed codec, so
// requests travel as ansa-packed/1 bodies the server decodes zero-copy.
// MicroE1BinaryLoopback keeps the un-negotiated baseline.
func MicroE1RemoteLoopback(b *testing.B) {
	p, proxy := mustBatchedPair(b, odp.LinkProfile{}, odp.QoS{Timeout: 30 * time.Second})
	defer p.close()
	if n, _ := p.client.Gather()["rpc.client.packed_upgrades"].(uint64); n == 0 {
		b.Fatal("packed codec not negotiated after warm-up")
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1HistogramLoopback is MicroE1RemoteLoopback with the latency
// histograms pinned into the measured path: after the timed loop it
// checks both ends' histogram counts advanced once per call. Recording
// is always on — there is no sampling knob to turn it off — so this
// rung and E1RemoteLoopback measure the same path and should track each
// other exactly; what the assertion buys is that a refactor which
// routes the hot path around the histograms fails the benchmark instead
// of silently recording an uninstrumented number.
func MicroE1HistogramLoopback(b *testing.B) {
	p, proxy := mustBatchedPair(b, odp.LinkProfile{}, odp.QoS{Timeout: 30 * time.Second})
	defer p.close()
	if n, _ := p.client.Gather()["rpc.client.packed_upgrades"].(uint64); n == 0 {
		b.Fatal("packed codec not negotiated after warm-up")
	}
	callsBefore, _ := p.client.Gather()["rpc.client.call_count"].(uint64)
	dispatchBefore, _ := p.server.Gather()["rpc.server.dispatch_count"].(uint64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	callsAfter, _ := p.client.Gather()["rpc.client.call_count"].(uint64)
	dispatchAfter, _ := p.server.Gather()["rpc.server.dispatch_count"].(uint64)
	if got := callsAfter - callsBefore; got < uint64(b.N) {
		b.Fatalf("client call histogram advanced %d over %d measured calls", got, b.N)
	}
	if got := dispatchAfter - dispatchBefore; got < uint64(b.N) {
		b.Fatalf("server dispatch histogram advanced %d over %d measured calls", got, b.N)
	}
}

// MicroE1BinaryLoopback is the plain-binary control for
// MicroE1RemoteLoopback: the same serial loopback invocation ladder rung
// with no coalescer and no capability negotiation, every request a
// version-1 binary-codec datagram of its own. The delta against
// E1RemoteLoopback is what packed framing plus scatter-gather writes
// buy; this rung is also what a peer that never sent a HELLO keeps
// paying, so it must not regress when the packed path evolves.
func MicroE1BinaryLoopback(b *testing.B) {
	p := mustPair(b, odp.LinkProfile{})
	defer p.close()
	ref := mustPublish(b, p, "cell", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1TracedLoopback is E1RemoteLoopback with tracing on and every
// call sampled: each invocation mints a stub root, a send span, trace
// context on the wire and a server dispatch span. The delta against
// E1RemoteLoopback is the full per-call cost of observation.
func MicroE1TracedLoopback(b *testing.B) {
	p, err := newTracedPair(odp.LinkProfile{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer p.close()
	ref := mustPublish(b, p, "cell", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1TracedUnsampledLoopback is the overhead that matters: the
// collector wired through every layer but sampling off, which must cost
// nothing but a handful of nil/atomic checks — the alloc gate in
// trace_test.go pins it at zero added allocations.
func MicroE1TracedUnsampledLoopback(b *testing.B) {
	p, err := newTracedPair(odp.LinkProfile{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer p.close()
	ref := mustPublish(b, p, "cell", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// mustBatchedPair builds the two-node rig with write coalescing on both
// sides and warms it up until the in-band negotiation has fully
// settled — the peers have exchanged HELLOs and the client has started
// upgrading calls to the packed codec — so the measured region is pure
// steady state. A fixed warm-up count is not enough: the HELLO probe's
// delivery goroutine can be starved for a while behind the
// request/reply ping-pong on a single-CPU runner, so the loop polls
// the negotiated state instead of assuming it.
func mustBatchedPair(b *testing.B, profile odp.LinkProfile, proxyQoS odp.QoS) (*pair, *odp.Proxy) {
	b.Helper()
	p, err := newBatchedPair(profile)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := p.server.Publish("cell", odp.Object{Servant: newCell(0)})
	if err != nil {
		p.close()
		b.Fatal(err)
	}
	proxy := p.client.Bind(ref).WithQoS(proxyQoS)
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			p.close()
			b.Fatal(err)
		}
		if i >= 16 {
			if n, _ := p.client.Gather()["rpc.client.packed_upgrades"].(uint64); n > 0 {
				break
			}
			if time.Now().After(deadline) {
				p.close()
				b.Fatal("packed codec not negotiated within warm-up deadline")
			}
			runtime.Gosched()
		}
	}
	return p, proxy
}

// MicroE1PipelinedLoopback is the headline batching benchmark: 16
// concurrent callers pipeline interrogations over one coalesced
// loopback connection. Each caller still waits for its reply, but
// requests, replies and piggybacked acks share BATCH datagrams, so the
// per-packet channel overhead that dominates MicroE1RemoteLoopback is
// amortised across the callers and the ns/op reported here is the
// throughput-side cost of an invocation under load.
func MicroE1PipelinedLoopback(b *testing.B) {
	p, proxy := mustBatchedPair(b, odp.LinkProfile{}, odp.QoS{Timeout: 30 * time.Second})
	defer p.close()
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// MicroE4Interrogation is the request-reply half of the E4 comparison,
// over a LAN-like link.
func MicroE4Interrogation(b *testing.B) {
	p := mustPair(b, odp.LAN)
	defer p.close()
	ref := mustPublish(b, p, "sink", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE4Announcement is the request-only half: no reply to wait for.
// Announcements are fire-and-forget, so a naive send loop measures only
// enqueue cost while the server's backlog (one execute goroutine per
// announcement) grows with b.N — the ns/op then depends on the iteration
// count through GC pressure, which is exactly what a recorded trajectory
// cannot tolerate. The loop therefore keeps a bounded in-flight window
// and drains the sink before stopping the clock: the number is
// steady-state announcement *throughput* (send + execute), independent
// of b.N. Recorded as E4AnnouncementDrained since the semantics changed.
func MicroE4Announcement(b *testing.B) {
	const window = 1024
	p := mustPair(b, odp.LAN)
	defer p.close()
	sink := newCell(0)
	ref := mustPublish(b, p, "sink", odp.Object{Servant: sink})
	proxy := p.client.Bind(ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proxy.Announce("note"); err != nil {
			b.Fatal(err)
		}
		if (i+1)%window == 0 {
			drainAnnouncements(b, sink, int64(i+1-window))
		}
	}
	drainAnnouncements(b, sink, int64(b.N))
}

// drainAnnouncements blocks until the sink has executed at least n
// announcements, yielding so the server's goroutines get the CPU.
func drainAnnouncements(b *testing.B, sink *cell, n int64) {
	deadline := time.Now().Add(30 * time.Second)
	for sink.count() < n {
		if time.Now().After(deadline) {
			b.Fatalf("announcement backlog never drained: %d/%d", sink.count(), n)
		}
		runtime.Gosched()
	}
}

// MicroE4AnnounceConcurrent measures announcement throughput with 16
// concurrent senders sharing one coalesced connection — the
// scaling-with-senders headline of the batching layer. Announcements
// are fire-and-forget, so every sender runs flat out and the coalescer
// packs their bursts into shared datagrams.
func MicroE4AnnounceConcurrent(b *testing.B) {
	p, proxy := mustBatchedPair(b, odp.LAN, odp.QoS{Timeout: 30 * time.Second})
	defer p.close()
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := proxy.Announce("note"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// MicroE12FrameSend measures the stream fast path: one 256-byte frame
// per op through the stream binding.
func MicroE12FrameSend(b *testing.B) {
	p := mustPair(b, odp.LinkProfile{})
	defer p.close()
	rx, err := odp.NewStreamReceiver(p.client, func(odp.StreamSpec) (odp.Sink, error) {
		return odp.SinkFunc(func(odp.Frame) {}), nil
	})
	if err != nil {
		b.Fatal(err)
	}
	bind, err := odp.BindStream(p.server, rx.Ref(), odp.StreamSpec{Media: "data"})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bind.Send(int64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// traderRig builds a trader populated with n offers (one in ten matching
// the Cell requirement) for the store micro-benchmarks.
func traderRig(b *testing.B, n int, opts ...odp.Option) (*pair, odp.ImportSpec) {
	b.Helper()
	p, err := newPair(odp.LinkProfile{}, append([]odp.Option{odp.WithTrader("bench")}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		t := cellTypeOnly("get")
		if i%10 != 0 {
			t = odp.Type{Name: "Other", Ops: map[string]odp.Operation{
				"frob": {Outcomes: map[string][]odp.Desc{"ok": {}}},
			}}
		}
		if _, err := p.server.Trader.Advertise(t,
			odp.Ref{ID: "o", Endpoints: []string{"x"}},
			map[string]odp.Value{"i": int64(i)}); err != nil {
			p.close()
			b.Fatal(err)
		}
	}
	return p, odp.ImportSpec{Requirement: cellTypeOnly("get"), MaxMatches: 1}
}

// microTraderImport measures a steady-state single-match import: every
// shard lookup hits a current RCU snapshot, so the op is sixteen atomic
// loads plus one offer clone regardless of population.
func microTraderImport(b *testing.B, n int) {
	p, spec := traderRig(b, n)
	defer p.close()
	ctx := context.Background()
	tr := p.server.Trader
	if _, err := tr.Import(ctx, spec); err != nil { // publish snapshots
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Import(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroTraderImport10k: single-match import over ten thousand offers.
func MicroTraderImport10k(b *testing.B) { microTraderImport(b, 10_000) }

// MicroTraderImport100k: the same import over ten times the population —
// the trajectory gate holds the pair together, pinning the flatness
// claim of E19.
func MicroTraderImport100k(b *testing.B) { microTraderImport(b, 100_000) }

// MicroTraderChurn10k interleaves advertise/withdraw churn with imports
// under the bounded-staleness snapshot policy: the cost of keeping the
// store hot while it changes.
func MicroTraderChurn10k(b *testing.B) {
	p, spec := traderRig(b, 10_000,
		odp.WithTraderSnapshotPolicy(10*time.Millisecond, 1<<16))
	defer p.close()
	ctx := context.Background()
	tr := p.server.Trader
	if _, err := tr.Import(ctx, spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	id := ""
	for i := 0; i < b.N; i++ {
		if id != "" {
			if err := tr.Withdraw(id); err != nil {
				b.Fatal(err)
			}
		}
		var err error
		if id, err = tr.Advertise(cellTypeOnly("get"),
			odp.Ref{ID: "churn", Endpoints: []string{"x"}}, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Import(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}
