package bench

import (
	"context"
	"testing"
	"time"

	"odp"
)

// This file holds the hot-path micro-benchmarks shared by two callers:
// the repo-root Benchmark wrappers (so `go test -bench` still works) and
// cmd/odpbench's -record mode, which runs them through
// testing.Benchmark() and writes the BENCH_<seq>.json trajectory file.
// Keeping one definition means the number in the JSON is the number the
// benchmark prints — they cannot drift apart.

// MicroBenchmarks lists the recorded hot-path benchmarks in a stable
// order. Names match the root Benchmark functions minus the "Benchmark"
// prefix.
func MicroBenchmarks() []struct {
	Name string
	Fn   func(*testing.B)
} {
	return []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"E1DirectGoCall", MicroE1DirectGoCall},
		{"E1CoLocatedOptimised", MicroE1CoLocatedOptimised},
		{"E1RemoteLoopback", MicroE1RemoteLoopback},
		{"E4Interrogation", MicroE4Interrogation},
		{"E4Announcement", MicroE4Announcement},
		{"E12FrameSend", MicroE12FrameSend},
	}
}

// mustPair builds the standard two-node rig or aborts the benchmark.
func mustPair(b *testing.B, profile odp.LinkProfile) *pair {
	b.Helper()
	p, err := newPair(profile)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustPublish(b *testing.B, p *pair, id string, obj odp.Object) odp.Ref {
	b.Helper()
	ref, err := p.server.Publish(id, obj)
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

// MicroE1DirectGoCall is the floor of the E1 ladder: the servant invoked
// as a plain Go call, no platform at all.
func MicroE1DirectGoCall(b *testing.B) {
	servant := newCell(0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := servant.Dispatch(ctx, "add", []odp.Value{int64(1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1CoLocatedOptimised measures the §4.5 direct-local-access path:
// proxy and servant share a capsule, the dispatcher short-circuits codec
// and transport, arguments cross by copy only when mutable.
func MicroE1CoLocatedOptimised(b *testing.B) {
	p := mustPair(b, odp.LinkProfile{})
	defer p.close()
	ref := mustPublish(b, p, "cell", odp.Object{Servant: newCell(0)})
	proxy := p.server.Bind(ref)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE1RemoteLoopback measures the full protocol stack — codec, rpc,
// simulated fabric — with zero network latency, so what remains is the
// platform's own per-invocation cost.
func MicroE1RemoteLoopback(b *testing.B) {
	p := mustPair(b, odp.LinkProfile{})
	defer p.close()
	ref := mustPublish(b, p, "cell", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE4Interrogation is the request-reply half of the E4 comparison,
// over a LAN-like link.
func MicroE4Interrogation(b *testing.B) {
	p := mustPair(b, odp.LAN)
	defer p.close()
	ref := mustPublish(b, p, "sink", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Call(ctx, "add", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE4Announcement is the request-only half: no reply to wait for, so
// the cost is encoding plus a send.
func MicroE4Announcement(b *testing.B) {
	p := mustPair(b, odp.LAN)
	defer p.close()
	ref := mustPublish(b, p, "sink", odp.Object{Servant: newCell(0)})
	proxy := p.client.Bind(ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proxy.Announce("note"); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroE12FrameSend measures the stream fast path: one 256-byte frame
// per op through the stream binding.
func MicroE12FrameSend(b *testing.B) {
	p := mustPair(b, odp.LinkProfile{})
	defer p.close()
	rx, err := odp.NewStreamReceiver(p.client, func(odp.StreamSpec) (odp.Sink, error) {
		return odp.SinkFunc(func(odp.Frame) {}), nil
	})
	if err != nil {
		b.Fatal(err)
	}
	bind, err := odp.BindStream(p.server, rx.Ref(), odp.StreamSpec{Media: "data"})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bind.Send(int64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}
