// Package naming provides location transparency and context-relative
// naming.
//
// Location transparency (§5.4) "requires that a reference to an interface
// be usable without requiring a client to know or track the location of a
// service". Interfaces move for many reasons (checkpoint-restart, load
// balancing, co-location, passivation, group membership change); the
// relocation service records the *current* access information for
// interfaces that have moved. Crucially, "to avoid scaling problems,
// relocation mechanisms should only require the registration of changes
// in location because the majority of interfaces in a system can be
// expected to be temporary and stationary" — stationary interfaces are
// never registered, and the binder consults the relocator only after a
// direct invocation fails (experiment E7).
//
// Context-relative naming (§6) handles federation: "names are potentially
// ambiguous, since their meaning depends upon where they are interpreted:
// there is no canonical root. The ambiguity can be overcome by extending
// names with information about how to get back to their defining context."
package naming

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"odp/internal/wire"
)

// Errors returned by the naming layer.
var (
	// ErrUnknownInterface reports a lookup miss at the relocator.
	ErrUnknownInterface = errors.New("naming: unknown interface")
	// ErrBadName reports an unparsable context-relative name.
	ErrBadName = errors.New("naming: bad name")
)

// Table is the relocation register: interface id → current reference.
// Only *moved* interfaces appear here.
type Table struct {
	mu      sync.RWMutex
	entries map[string]wire.Ref
}

// NewTable returns an empty relocation table.
func NewTable() *Table {
	return &Table{entries: make(map[string]wire.Ref)}
}

// Register records the current reference for a moved interface. A
// registration with a lower epoch than the current entry is ignored
// (stale update from a slow mover).
func (t *Table) Register(ref wire.Ref) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.entries[ref.ID]; ok && cur.Epoch > ref.Epoch {
		return
	}
	t.entries[ref.ID] = wire.Clone(ref).(wire.Ref)
}

// Lookup returns the registered reference for id.
func (t *Table) Lookup(id string) (wire.Ref, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ref, ok := t.entries[id]
	if !ok {
		return wire.Ref{}, fmt.Errorf("%w: %q", ErrUnknownInterface, id)
	}
	return wire.Clone(ref).(wire.Ref), nil
}

// Unregister removes id, e.g. when an interface is finally destroyed.
func (t *Table) Unregister(id string) {
	t.mu.Lock()
	delete(t.entries, id)
	t.mu.Unlock()
}

// Len returns the number of registered (i.e. moved) interfaces.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Name is a context-relative name: a trail of contexts from the
// interpretation point back to the defining context, then a local name.
type Name struct {
	// Contexts is the trail, outermost first.
	Contexts []string
	// Local is the name within the defining context.
	Local string
}

// nameSep separates contexts in the textual form, e.g. "org-a!dept!svc".
const nameSep = "!"

// ParseName parses the textual form "ctx!ctx!local".
func ParseName(s string) (Name, error) {
	if s == "" {
		return Name{}, fmt.Errorf("%w: empty", ErrBadName)
	}
	parts := strings.Split(s, nameSep)
	for _, p := range parts {
		if p == "" {
			return Name{}, fmt.Errorf("%w: empty component in %q", ErrBadName, s)
		}
	}
	return Name{Contexts: parts[:len(parts)-1], Local: parts[len(parts)-1]}, nil
}

// String renders the textual form.
func (n Name) String() string {
	if len(n.Contexts) == 0 {
		return n.Local
	}
	return strings.Join(n.Contexts, nameSep) + nameSep + n.Local
}

// IsLocal reports whether the name needs no further context traversal.
func (n Name) IsLocal() bool { return len(n.Contexts) == 0 }

// Descend strips the outermost context, which must match ctx. Resolution
// walks the trail one federation hop at a time.
func (n Name) Descend(ctx string) (Name, error) {
	if n.IsLocal() {
		return Name{}, fmt.Errorf("%w: %q is already local", ErrBadName, n)
	}
	if n.Contexts[0] != ctx {
		return Name{}, fmt.Errorf("%w: %q does not begin with context %q", ErrBadName, n, ctx)
	}
	return Name{Contexts: append([]string(nil), n.Contexts[1:]...), Local: n.Local}, nil
}

// Qualify prepends ctx to the trail: applied when a name crosses a
// federation boundary outwards, so it remains resolvable from the far
// side.
func (n Name) Qualify(ctx string) Name {
	contexts := make([]string, 0, len(n.Contexts)+1)
	contexts = append(contexts, ctx)
	contexts = append(contexts, n.Contexts...)
	return Name{Contexts: contexts, Local: n.Local}
}
