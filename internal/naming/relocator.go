package naming

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/obs"
	"odp/internal/rpc"
	"odp/internal/types"
	"odp/internal/wire"
)

// RelocatorType is the interface type of the relocation service.
var RelocatorType = types.Type{
	Name: "odp.Relocator",
	Ops: map[string]types.Operation{
		"register": {
			Args:     []types.Desc{types.RefTo("")},
			Outcomes: map[string][]types.Desc{"ok": {}},
		},
		"lookup": {
			Args:     []types.Desc{types.String},
			Outcomes: map[string][]types.Desc{"found": {types.RefTo("")}, "unknown": {}},
		},
		"unregister": {
			Args:     []types.Desc{types.String},
			Outcomes: map[string][]types.Desc{"ok": {}},
		},
	},
}

// RelocatorServant exposes a Table as an ODP interface.
type RelocatorServant struct {
	table *Table
}

// NewRelocatorServant wraps table.
func NewRelocatorServant(table *Table) *RelocatorServant {
	return &RelocatorServant{table: table}
}

var _ capsule.Servant = (*RelocatorServant)(nil)

// Dispatch implements capsule.Servant.
func (r *RelocatorServant) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "register":
		ref, ok := args[0].(wire.Ref)
		if !ok {
			return "", nil, fmt.Errorf("naming: register wants a ref, got %T", args[0])
		}
		r.table.Register(ref)
		return "ok", nil, nil
	case "lookup":
		id, _ := args[0].(string)
		ref, err := r.table.Lookup(id)
		if errors.Is(err, ErrUnknownInterface) {
			return "unknown", nil, nil
		}
		if err != nil {
			return "", nil, err
		}
		return "found", []wire.Value{ref}, nil
	case "unregister":
		id, _ := args[0].(string)
		r.table.Unregister(id)
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("naming: relocator has no operation %q", op)
	}
}

// ExportRelocator hosts a fresh relocation service on c.
func ExportRelocator(c *capsule.Capsule) (*Table, wire.Ref, error) {
	table := NewTable()
	ref, err := c.Export(NewRelocatorServant(table),
		capsule.WithID(c.Name()+"/relocator"),
		capsule.WithType(RelocatorType))
	if err != nil {
		return nil, wire.Ref{}, err
	}
	return table, ref, nil
}

// Binder is the client-side location-transparency mechanism: it invokes
// through a reference and, when the direct path fails (the interface
// moved, or its host restarted elsewhere), consults the relocation
// service and retries with the fresh reference. Successful relocations
// are cached so subsequent invocations go direct.
type Binder struct {
	capsule   *capsule.Capsule
	relocator wire.Ref

	mu    sync.RWMutex
	cache map[string]wire.Ref

	// obs, when non-nil, makes the binder the root of invocation traces:
	// it sits at the top of every client-side channel, so the sampling
	// decision is taken here and the stub span brackets the whole
	// invocation, relocation retries included.
	obs *obs.Collector
	// clk stamps the resolve latency histogram (default clock.Real{}).
	clk clock.Clock

	stats binderCounters
	// resolveLat is the relocator-consultation latency distribution:
	// how long location transparency stalls an invocation when the
	// direct path fails.
	resolveLat obs.Histogram
}

// BinderStats counts binder events for the scaling experiment E7.
type BinderStats struct {
	Invocations uint64
	Relocations uint64 // relocator consultations
	CacheHits   uint64
}

// binderCounters is the hot-path form of BinderStats: the binder sits on
// every invocation, co-located ones included, so counting must not take a
// lock.
type binderCounters struct {
	invocations atomic.Uint64
	relocations atomic.Uint64
	cacheHits   atomic.Uint64
}

// BinderOption configures NewBinder.
type BinderOption func(*Binder)

// WithBinderObserver installs the node's span collector: the binder then
// roots a (sampling-subject) stub span per top-level invocation and
// records relocator consultations as resolve spans.
func WithBinderObserver(col *obs.Collector) BinderOption {
	return func(b *Binder) { b.obs = col }
}

// WithBinderClock sets the clock stamping the resolve latency histogram
// (default clock.Real{}; the platform injects its own).
func WithBinderClock(clk clock.Clock) BinderOption {
	return func(b *Binder) {
		if clk != nil {
			b.clk = clk
		}
	}
}

// NewBinder creates a binder that resolves through the relocation service
// at relocator.
func NewBinder(c *capsule.Capsule, relocator wire.Ref, opts ...BinderOption) *Binder {
	b := &Binder{
		capsule:   c,
		relocator: relocator,
		cache:     make(map[string]wire.Ref),
		clk:       clock.Real{},
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Stats returns a snapshot of binder counters.
func (b *Binder) Stats() BinderStats {
	return BinderStats{
		Invocations: b.stats.invocations.Load(),
		Relocations: b.stats.relocations.Load(),
		CacheHits:   b.stats.cacheHits.Load(),
	}
}

// ResolveLatency snapshots the relocator-consultation latency histogram.
func (b *Binder) ResolveLatency() obs.HistogramSnapshot {
	return b.resolveLat.Snapshot()
}

// Invoke performs an interrogation with relocation recovery.
func (b *Binder) Invoke(ctx context.Context, ref wire.Ref, op string, args []wire.Value, opts ...capsule.InvokeOption) (string, []wire.Value, error) {
	if len(opts) == 0 {
		return b.InvokeWith(ctx, ref, op, args, capsule.DefaultInvokeConfig())
	}
	return b.InvokeWith(ctx, ref, op, args, capsule.ResolveInvokeOptions(opts...))
}

// InvokeWith is Invoke with a pre-resolved configuration.
func (b *Binder) InvokeWith(ctx context.Context, ref wire.Ref, op string, args []wire.Value, cfg capsule.InvokeConfig) (string, []wire.Value, error) {
	b.stats.invocations.Add(1)

	// Top-level invocations root a trace here, at the stub boundary; a
	// nested invocation (the ctx already carries a span) joins its
	// caller's tree instead, so one client call yields one tree even
	// across relay and re-entry.
	var root *obs.Span
	if b.obs != nil && !obs.FromContext(ctx).Valid() {
		if root = b.obs.Begin(obs.KindStub, op); root != nil {
			ctx = obs.ContextWith(ctx, root.Context())
		}
	}
	outcome, results, err := b.invokeWith(ctx, ref, op, args, cfg)
	b.obs.End(root)
	return outcome, results, err
}

func (b *Binder) invokeWith(ctx context.Context, ref wire.Ref, op string, args []wire.Value, cfg capsule.InvokeConfig) (string, []wire.Value, error) {
	// A cached relocation supersedes the caller's (possibly stale) ref.
	b.mu.RLock()
	cached, hit := b.cache[ref.ID]
	b.mu.RUnlock()
	attempt := ref
	if hit && cached.Epoch >= ref.Epoch {
		attempt = cached
		b.stats.cacheHits.Add(1)
	}

	outcome, results, err := b.capsule.InvokeWith(ctx, attempt, op, args, cfg)
	if err == nil || !isRelocatable(err) {
		return outcome, results, err
	}

	fresh, rerr := b.resolve(ctx, ref.ID)
	if rerr != nil {
		return "", nil, fmt.Errorf("naming: invoke failed (%v) and relocation failed: %w", err, rerr)
	}
	b.mu.Lock()
	b.cache[ref.ID] = fresh
	b.mu.Unlock()
	return b.capsule.InvokeWith(ctx, fresh, op, args, cfg)
}

// resolve asks the relocation service for the current reference. The
// resolve span parents under the stub (via ctx), so a trace shows the
// relocation an invocation needed — including the nested lookup's own
// send/dispatch spans beneath it.
func (b *Binder) resolve(ctx context.Context, id string) (wire.Ref, error) {
	b.stats.relocations.Add(1)
	began := b.clk.Now()
	defer func() { b.resolveLat.Observe(b.clk.Since(began)) }()
	var sp *obs.Span
	if b.obs != nil {
		if sp = b.obs.BeginChild(obs.FromContext(ctx), obs.KindResolve, id); sp != nil {
			ctx = obs.ContextWith(ctx, sp.Context())
		}
	}
	defer b.obs.End(sp)
	outcome, results, err := b.capsule.Invoke(ctx, b.relocator, "lookup", []wire.Value{id})
	if err != nil {
		return wire.Ref{}, err
	}
	if outcome != "found" {
		return wire.Ref{}, fmt.Errorf("%w: %q", ErrUnknownInterface, id)
	}
	ref, ok := results[0].(wire.Ref)
	if !ok {
		return wire.Ref{}, fmt.Errorf("naming: relocator returned %T", results[0])
	}
	return ref, nil
}

// isRelocatable reports whether err indicates the interface may have
// moved (rather than an application or policy failure).
func isRelocatable(err error) bool {
	return errors.Is(err, rpc.ErrNoObject) ||
		errors.Is(err, rpc.ErrTimeout) ||
		errors.Is(err, capsule.ErrNoEndpoint)
}
