package naming

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/obs"
	"odp/internal/rpc"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

func TestTableRegisterLookup(t *testing.T) {
	tb := NewTable()
	if tb.Len() != 0 {
		t.Fatal("new table not empty")
	}
	ref := wire.Ref{ID: "x", Endpoints: []string{"ep1"}, Epoch: 1}
	tb.Register(ref)
	got, err := tb.Lookup("x")
	if err != nil || !wire.Equal(got, ref) {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := tb.Lookup("missing"); !errors.Is(err, ErrUnknownInterface) {
		t.Fatalf("want ErrUnknownInterface, got %v", err)
	}
	tb.Unregister("x")
	if _, err := tb.Lookup("x"); err == nil {
		t.Fatal("lookup after unregister succeeded")
	}
}

func TestTableStaleEpochIgnored(t *testing.T) {
	tb := NewTable()
	tb.Register(wire.Ref{ID: "x", Endpoints: []string{"new"}, Epoch: 5})
	tb.Register(wire.Ref{ID: "x", Endpoints: []string{"old"}, Epoch: 3})
	got, err := tb.Lookup("x")
	if err != nil || got.Endpoints[0] != "new" {
		t.Fatalf("stale registration overwrote fresher one: %v %v", got, err)
	}
	// Equal epoch replaces (idempotent re-registration).
	tb.Register(wire.Ref{ID: "x", Endpoints: []string{"same"}, Epoch: 5})
	got, _ = tb.Lookup("x")
	if got.Endpoints[0] != "same" {
		t.Fatalf("same-epoch re-registration ignored: %v", got)
	}
}

func TestTableIsolation(t *testing.T) {
	tb := NewTable()
	ref := wire.Ref{ID: "x", Endpoints: []string{"ep1"}}
	tb.Register(ref)
	ref.Endpoints[0] = "mutated"
	got, _ := tb.Lookup("x")
	if got.Endpoints[0] != "ep1" {
		t.Fatal("table shares storage with caller")
	}
	got.Endpoints[0] = "mutated2"
	again, _ := tb.Lookup("x")
	if again.Endpoints[0] != "ep1" {
		t.Fatal("table shares storage with lookup result")
	}
}

func TestParseAndFormatName(t *testing.T) {
	tests := []struct {
		give    string
		wantCtx int
		local   string
		wantErr bool
	}{
		{give: "svc", wantCtx: 0, local: "svc"},
		{give: "org!svc", wantCtx: 1, local: "svc"},
		{give: "a!b!c!svc", wantCtx: 3, local: "svc"},
		{give: "", wantErr: true},
		{give: "a!!b", wantErr: true},
		{give: "!a", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			n, err := ParseName(tt.give)
			if tt.wantErr {
				if !errors.Is(err, ErrBadName) {
					t.Fatalf("want ErrBadName, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Contexts) != tt.wantCtx || n.Local != tt.local {
				t.Fatalf("parsed %+v", n)
			}
			if n.String() != tt.give {
				t.Fatalf("round trip %q -> %q", tt.give, n.String())
			}
		})
	}
}

func TestNameDescendQualify(t *testing.T) {
	n, err := ParseName("a!b!svc")
	if err != nil {
		t.Fatal(err)
	}
	d, err := n.Descend("a")
	if err != nil || d.String() != "b!svc" {
		t.Fatalf("descend: %v %v", d, err)
	}
	if _, err := n.Descend("wrong"); !errors.Is(err, ErrBadName) {
		t.Fatalf("descend wrong ctx: %v", err)
	}
	local := Name{Local: "svc"}
	if _, err := local.Descend("a"); !errors.Is(err, ErrBadName) {
		t.Fatalf("descend local: %v", err)
	}
	q := d.Qualify("gateway")
	if q.String() != "gateway!b!svc" {
		t.Fatalf("qualify: %v", q)
	}
	// Qualify must not mutate the original.
	if d.String() != "b!svc" {
		t.Fatal("qualify mutated the original")
	}
}

func TestNameQualifyDescendRoundTripProperty(t *testing.T) {
	prop := func(ctxIdx uint8, depth uint8) bool {
		contexts := []string{"alpha", "beta", "gamma"}
		n := Name{Local: "svc"}
		for i := 0; i < int(depth%4); i++ {
			n = n.Qualify(contexts[(int(ctxIdx)+i)%3])
		}
		// Descending through every qualified context must recover "svc".
		for !n.IsLocal() {
			var err error
			n, err = n.Descend(n.Contexts[0])
			if err != nil {
				return false
			}
		}
		return n.Local == "svc"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// setupRelocation builds: a relocator capsule, a home capsule, a new-home
// capsule and a client with a Binder.
func setupRelocation(t *testing.T, opts ...BinderOption) (*netsim.Fabric, *capsule.Capsule, *capsule.Capsule, *capsule.Capsule, *Table, *Binder) {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	mk := func(name string) *capsule.Capsule {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	relocCap := mk("reloc")
	home := mk("home")
	newHome := mk("newhome")
	client := mk("client")
	table, relocRef, err := ExportRelocator(relocCap)
	if err != nil {
		t.Fatal(err)
	}
	binder := NewBinder(client, relocRef, opts...)
	return f, home, newHome, client, table, binder
}

func TestBinderResolveSpanCoversRelocation(t *testing.T) {
	// E-series coverage for the binder.resolve channel stage: a
	// relocation consulted during an invocation must surface as an
	// obs.KindResolve span under the invocation's root span, so traces
	// make the Movable constraint's enforcement visible.
	col := obs.NewCollector("client", obs.WithSampleEvery(1))
	_, home, newHome, _, table, binder := setupRelocation(t, WithBinderObserver(col))
	ref, err := home.Export(constServant("movable"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := binder.Invoke(context.Background(), ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	home.Unexport(ref.ID)
	newRef, err := newHome.Export(constServant("movable"), capsule.WithID(ref.ID))
	if err != nil {
		t.Fatal(err)
	}
	newRef.Epoch = ref.Epoch + 1
	table.Register(newRef)
	if _, res, err := binder.Invoke(context.Background(), ref, "get", nil,
		capsule.WithQoS(rpc.QoS{Timeout: time.Second})); err != nil || res[0] != "movable" {
		t.Fatalf("relocated invoke: %v %v", res, err)
	}

	var resolves int
	for _, sp := range col.Snapshot() {
		if sp.Kind == obs.KindResolve {
			resolves++
			if sp.Name != ref.ID {
				t.Fatalf("resolve span names %q, want the moved ref %q", sp.Name, ref.ID)
			}
		}
	}
	if resolves != 1 {
		t.Fatalf("got %d %s spans, want exactly 1 (one relocator consultation)", resolves, obs.KindResolve)
	}
}

type constServant string

func (s constServant) Dispatch(_ context.Context, op string, _ []wire.Value) (string, []wire.Value, error) {
	return "ok", []wire.Value{string(s)}, nil
}

func TestBinderDirectPathNoRelocatorTraffic(t *testing.T) {
	// Stationary interfaces must not touch the relocator (§5.4 scaling
	// requirement).
	_, home, _, _, _, binder := setupRelocation(t)
	ref, err := home.Export(constServant("stationary"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, res, err := binder.Invoke(context.Background(), ref, "get", nil)
		if err != nil || res[0] != "stationary" {
			t.Fatalf("invoke: %v %v", res, err)
		}
	}
	st := binder.Stats()
	if st.Relocations != 0 {
		t.Fatalf("binder consulted relocator %d times for a stationary interface", st.Relocations)
	}
}

func TestBinderRecoversAfterMove(t *testing.T) {
	_, home, newHome, _, table, binder := setupRelocation(t)
	ref, err := home.Export(constServant("movable"))
	if err != nil {
		t.Fatal(err)
	}
	// First contact succeeds directly.
	if _, _, err := binder.Invoke(context.Background(), ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	// The object moves *without* leaving a forward (its old host
	// evaporated); only the relocator knows the new location.
	home.Unexport(ref.ID)
	newRef, err := newHome.Export(constServant("movable"), capsule.WithID(ref.ID))
	if err != nil {
		t.Fatal(err)
	}
	newRef.Epoch = ref.Epoch + 1
	table.Register(newRef)

	_, res, err := binder.Invoke(context.Background(), ref, "get", nil,
		capsule.WithQoS(rpc.QoS{Timeout: time.Second}))
	if err != nil || res[0] != "movable" {
		t.Fatalf("relocated invoke: %v %v", res, err)
	}
	if binder.Stats().Relocations != 1 {
		t.Fatalf("relocations = %d, want 1", binder.Stats().Relocations)
	}
	// Second invocation hits the cache, no further relocator traffic.
	if _, _, err := binder.Invoke(context.Background(), ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	st := binder.Stats()
	if st.Relocations != 1 || st.CacheHits == 0 {
		t.Fatalf("cache not used: %+v", st)
	}
}

func TestBinderUnknownInterface(t *testing.T) {
	_, home, _, _, _, binder := setupRelocation(t)
	ref, err := home.Export(constServant("x"))
	if err != nil {
		t.Fatal(err)
	}
	home.Unexport(ref.ID)
	_, _, err = binder.Invoke(context.Background(), ref, "get", nil,
		capsule.WithQoS(rpc.QoS{Timeout: 300 * time.Millisecond}))
	if err == nil {
		t.Fatal("invoke of vanished unregistered interface succeeded")
	}
}

func TestBinderApplicationErrorNotRelocated(t *testing.T) {
	_, home, _, _, _, binder := setupRelocation(t)
	boom := capsule.ServantFunc(func(_ context.Context, _ string, _ []wire.Value) (string, []wire.Value, error) {
		return "", nil, errors.New("application fault")
	})
	ref, err := home.Export(boom)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := binder.Invoke(context.Background(), ref, "op", nil); err == nil {
		t.Fatal("expected fault")
	}
	if binder.Stats().Relocations != 0 {
		t.Fatal("binder treated an application fault as a relocation")
	}
}

func TestRelocatorServantOperations(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	ep, _ := f.Endpoint("r")
	c := capsule.New("r", ep, codec)
	t.Cleanup(func() { _ = c.Close() })
	_, relocRef, err := ExportRelocator(c)
	if err != nil {
		t.Fatal(err)
	}
	cep, _ := f.Endpoint("c")
	client := capsule.New("c", cep, codec)
	t.Cleanup(func() { _ = client.Close() })

	ctx := context.Background()
	target := wire.Ref{ID: "moved-obj", Endpoints: []string{"somewhere"}, Epoch: 7}
	outcome, _, err := client.Invoke(ctx, relocRef, "register", []wire.Value{target})
	if err != nil || outcome != "ok" {
		t.Fatalf("register: %q %v", outcome, err)
	}
	outcome, res, err := client.Invoke(ctx, relocRef, "lookup", []wire.Value{"moved-obj"})
	if err != nil || outcome != "found" || !wire.Equal(res[0], target) {
		t.Fatalf("lookup: %q %v %v", outcome, res, err)
	}
	outcome, _, err = client.Invoke(ctx, relocRef, "lookup", []wire.Value{"nope"})
	if err != nil || outcome != "unknown" {
		t.Fatalf("lookup miss: %q %v", outcome, err)
	}
	outcome, _, err = client.Invoke(ctx, relocRef, "unregister", []wire.Value{"moved-obj"})
	if err != nil || outcome != "ok" {
		t.Fatalf("unregister: %q %v", outcome, err)
	}
	outcome, _, _ = client.Invoke(ctx, relocRef, "lookup", []wire.Value{"moved-obj"})
	if outcome != "unknown" {
		t.Fatalf("lookup after unregister: %q", outcome)
	}
	if _, _, err := client.Invoke(ctx, relocRef, "frobnicate", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestRegisterOnlyChangesScaling(t *testing.T) {
	// E7's qualitative shape: the relocator's table size is proportional
	// to the number of *moved* interfaces, not the number of interfaces.
	_, home, _, _, table, binder := setupRelocation(t)
	const stationary = 200
	refs := make([]wire.Ref, stationary)
	for i := range refs {
		ref, err := home.Export(constServant(fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	for _, ref := range refs {
		if _, _, err := binder.Invoke(context.Background(), ref, "get", nil); err != nil {
			t.Fatal(err)
		}
	}
	if table.Len() != 0 {
		t.Fatalf("relocator holds %d entries for stationary interfaces", table.Len())
	}
}
