package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full analysis suite over the entire module and
// requires zero diagnostics. This is a tier-1 invariant: the engineering
// model rules the passes encode (no blocking under a mutex, no wall-clock
// reads in simulation-driven packages, no layer bypass, total codecs)
// hold everywhere, forever. A failure here is a real defect in whatever
// code tripped it, not in this test.
func TestRepoIsClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	res := RunDetailed(pkgs, DefaultAnalyzers())
	for _, s := range res.Suppressed {
		t.Logf("suppressed: %s: [%s] %s (reason: %s)",
			s.Directive, s.Diagnostic.Pass, s.Diagnostic.Message, s.Reason)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d.Render())
	}
}

// fixtureCase is one known-bad corpus package with its exact expected
// diagnostics, rendered "file.go:line: [pass] message".
type fixtureCase struct {
	dir      string
	asPath   string // synthetic import path the fixture is loaded under
	analyzer Analyzer
	want     []string
}

func fixtureCases() []fixtureCase {
	return []fixtureCase{
		{
			dir: "locksend", asPath: "odp/internal/locksend",
			analyzer: NewMutexHeld(DefaultMutexHeldConfig()),
			want: []string{
				"locksend.go:17: [mutexheld] channel send while q.mu is held",
			},
		},
		{
			dir: "lockrecv", asPath: "odp/internal/lockrecv",
			analyzer: NewMutexHeld(DefaultMutexHeldConfig()),
			want: []string{
				"lockrecv.go:18: [mutexheld] channel receive while q.mu is held",
				"lockrecv.go:24: [mutexheld] call to sync.WaitGroup.Wait while q.mu is held",
			},
		},
		{
			dir: "trylock", asPath: "odp/internal/trylock",
			analyzer: NewMutexHeld(DefaultMutexHeldConfig()),
			want: []string{
				"trylock.go:17: [mutexheld] channel send while q.mu is held",
				"trylock.go:29: [mutexheld] channel send while q.mu is held",
				"trylock.go:36: [mutexheld] channel send while q.mu is held",
			},
		},
		{
			dir: "lockerval", asPath: "odp/internal/lockerval",
			analyzer: NewMutexHeld(DefaultMutexHeldConfig()),
			want: []string{
				"lockerval.go:16: [mutexheld] channel send while s.l is held",
			},
		},
		{
			dir: "lockedctx", asPath: "odp/internal/lockedctx",
			analyzer: NewMutexHeld(DefaultMutexHeldConfig()),
			want: []string{
				"lockedctx.go:14: [mutexheld] channel receive while (caller's mutex) is held",
				"lockedctx.go:19: [mutexheld] channel send while (caller's mutex) is held",
			},
		},
		{
			dir: "timecall", asPath: "odp/internal/timecall",
			analyzer: NewDetClock(DefaultDetClockConfig()),
			want: []string{
				"timecall.go:9: [detclock] time.Now in simulation-driven package odp/internal/timecall: take the time from internal/clock",
				"timecall.go:14: [detclock] time.Sleep in simulation-driven package odp/internal/timecall: take the time from internal/clock",
			},
		},
		{
			dir: "randtick", asPath: "odp/internal/randtick",
			analyzer: NewDetClock(DefaultDetClockConfig()),
			want: []string{
				"randtick.go:12: [detclock] global rand.Int63n in simulation-driven package odp/internal/randtick: use a seeded rand.New(rand.NewSource(...))",
				"randtick.go:17: [detclock] time.NewTicker in simulation-driven package odp/internal/randtick: take the time from internal/clock",
			},
		},
		{
			// Loaded as a computational-model package: the direct
			// transport import must be rejected.
			dir: "transportimport", asPath: "odp/internal/order",
			analyzer: NewLayering(DefaultLayeringConfig()),
			want: []string{
				"transportimport.go:7: [layering] odp/internal/order imports odp/internal/transport directly: only odp, odp/internal/rpc, odp/internal/core, odp/internal/capsule, odp/internal/netsim may bypass the proxy layers",
			},
		},
		{
			// Loaded as a computational-model package: the simulated
			// fabric — including the sparse-topology subnet surface — may
			// only be owned by the façade or the sim harness.
			dir: "netsimreach", asPath: "odp/internal/group",
			analyzer: NewLayering(DefaultLayeringConfig()),
			want: []string{
				"netsimreach.go:9: [layering] odp/internal/group imports odp/internal/netsim directly: only odp, odp/internal/sim may bypass the proxy layers",
			},
		},
		{
			// Loaded as a low-layer package: its module-internal import
			// points upward.
			dir: "lowreach", asPath: "odp/internal/clock",
			analyzer: NewLayering(DefaultLayeringConfig()),
			want: []string{
				"lowreach.go:6: [layering] low-layer package odp/internal/clock imports odp/internal/wire: lower layers must not reach upward",
			},
		},
		{
			dir: "ctxdrop", asPath: "odp/internal/ctxdrop",
			analyzer: NewCtxDrop(),
			want: []string{
				`ctxdrop.go:9: [ctxdrop] context parameter "ctx" is dropped by Dropped: propagate it or rename it to _`,
				`ctxdrop.go:20: [ctxdrop] context parameter "ctx" is dropped by function literal: propagate it or rename it to _`,
			},
		},
		{
			dir: "obsleak", asPath: "odp/internal/obsleak",
			analyzer: NewObsLeak(),
			want: []string{
				`obsleak.go:10: [obsleak] span "sp" from Collector.Begin never reaches End: release it on every return path`,
				"obsleak.go:18: [obsleak] result of Collector.Begin is discarded: a sampled span would never be released",
				"obsleak.go:19: [obsleak] result of Collector.BeginChild is discarded: a sampled span would never be released",
			},
		},
		{
			dir: "kindmiss", asPath: "odp/internal/kindmiss",
			analyzer: NewWireTotal(),
			want: []string{
				"kindmiss.go:46: [wiretotal] Encode: encoder type switch misses data-model type int64",
				"kindmiss.go:60: [wiretotal] Decode: decoder kind switch misses KindInt",
			},
		},
		{
			dir: "refdrift", asPath: "odp/internal/refdrift",
			analyzer: NewWireTotal(),
			want: []string{
				"refdrift.go:30: [wiretotal] taggedRef lacks field Epoch declared on Ref",
				"refdrift.go:54: [wiretotal] decoder Decode does not cover field Ref.Epoch: codec and type have drifted",
			},
		},
	}
}

// TestFixtures proves each pass fires on its known-bad corpus, producing
// exactly the expected diagnostics — no more, no fewer, no drift in
// position or wording.
func TestFixtures(t *testing.T) {
	for _, c := range fixtureCases() {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			l, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", c.dir), c.asPath)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			var got []string
			for _, d := range Run([]*Package{pkg}, []Analyzer{c.analyzer}) {
				got = append(got, fmt.Sprintf("%s:%d: [%s] %s",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pass, d.Message))
			}
			if len(got) != len(c.want) {
				t.Fatalf("got %d diagnostics, want %d:\ngot:  %q\nwant: %q",
					len(got), len(c.want), got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestDetClockFileExemption pins the per-file exemption mechanism that
// scopes netsim's wall-clock license to realtime.go: an ExemptFiles
// entry names "pkgpath/basename", so it silences exactly that file and
// does not follow the basename into another package.
func TestDetClockFileExemption(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", "timecall"), "odp/internal/timecall")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDetClockConfig()
	cfg.ExemptFiles = append(cfg.ExemptFiles, "odp/internal/timecall/timecall.go")
	for _, d := range Run([]*Package{pkg}, []Analyzer{NewDetClock(cfg)}) {
		t.Errorf("exempt file still flagged: %s", d)
	}

	other := DefaultDetClockConfig()
	other.ExemptFiles = []string{"odp/internal/elsewhere/timecall.go"}
	if ds := Run([]*Package{pkg}, []Analyzer{NewDetClock(other)}); len(ds) == 0 {
		t.Error("exemption for another package's file silenced this one")
	}
}

// TestSelectWithDefaultIsNonBlocking pins the exemption that keeps
// clock.Fake.Advance legal: a select with a default clause cannot block,
// so it is allowed under a held mutex.
func TestSelectWithDefaultIsNonBlocking(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("odp/internal/clock")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []Analyzer{NewMutexHeld(DefaultMutexHeldConfig())}) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
