package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lockgraph pass proves static deadlock freedom for the whole module.
//
// Where mutexheld forbids blocking *operations* under a lock, lockgraph
// checks the *order* in which locks are taken. Every named lock site —
// a struct-field mutex (keyed "pkgpath.Type.field") or a package-level
// lock ("pkgpath.var") — is a node. Acquiring B while holding A adds the
// edge A → B; the acquisition may be direct or buried arbitrarily deep in
// a chain of calls, including calls through interface values (resolved to
// every module implementation) and through `Locked`-suffixed helpers
// (their callers hold the lock at the call site, so the chain composes).
// A cycle in the resulting graph means two executions can wait on each
// other forever; each cycle is reported once, with a full witness chain —
// file:line for every acquire and every call step of every edge.
//
// Two deliberate approximations, both conservative:
//
//   - instances collapse onto their lock site: locking a.mu then b.mu of
//     the same type reports a self-cycle, because nothing orders the two
//     instances statically. Code that really needs hand-over-hand or
//     pairwise locking must order instances explicitly and declare the
//     edge in the allowlist.
//   - goroutine bodies are analyzed as independent executions: a lock
//     taken inside `go func(){...}()` is not "held" by the spawner, but
//     ordering violations inside the goroutine still count.
//
// Intentional hierarchies are declared in LockGraphConfig.AllowedEdges.
// An allowlisted edge is removed before cycle detection; an entry that
// matches no edge is itself a finding, so the allowlist cannot rot.

// LockGraphConfig configures the lockgraph pass.
type LockGraphConfig struct {
	// AllowedEdges lists documented lock-order facts: "while From is
	// held, To may be acquired". Each entry must state why the order is
	// safe. Entries name lock sites canonically: "pkgpath.Type.field"
	// for struct-field mutexes, "pkgpath.var" for package-level locks.
	AllowedEdges []LockOrderEdge
}

// LockOrderEdge is one allowlisted acquires-while-holding edge.
type LockOrderEdge struct {
	// From is held while To is acquired.
	From, To string
	// Reason documents why the edge cannot deadlock (e.g. a total order
	// on instances, or a strict layer hierarchy).
	Reason string
}

// DefaultLockGraphConfig returns this repository's documented lock
// hierarchy. It is empty: the platform's locks form a forest today, and
// any future entry must arrive with its justification.
func DefaultLockGraphConfig() LockGraphConfig {
	return LockGraphConfig{}
}

// NewLockGraph creates the whole-program lock-ordering pass.
func NewLockGraph(cfg LockGraphConfig) Analyzer { return &lockGraph{cfg: cfg} }

type lockGraph struct {
	cfg LockGraphConfig
}

func (*lockGraph) Name() string { return "lockgraph" }

// Run is a no-op: the order graph only means something on the whole
// program. See RunProgram.
func (*lockGraph) Run(*Package) []Diagnostic { return nil }

func (a *lockGraph) RunProgram(pkgs []*Package) []Diagnostic {
	p := &lgProgram{
		pkgs:      pkgs,
		fns:       make(map[*types.Func]*lgFunc),
		implCache: make(map[string][]*types.Func),
		summaries: make(map[*types.Func]map[string]lgTrace),
		edges:     make(map[[2]string]*lgEdge),
	}
	p.indexTypes()
	p.scanAll()
	p.computeSummaries()
	p.buildEdges()
	return p.report(a.cfg)
}

// lgStep is one hop of a witness chain.
type lgStep struct {
	pos  token.Position
	text string
}

// lgTrace is a witness chain: the steps from an acquire (or call) site to
// the acquisition it leads to.
type lgTrace []lgStep

func (t lgTrace) render() []string {
	out := make([]string, len(t))
	for i, s := range t {
		out[i] = fmt.Sprintf("%s:%d: %s", s.pos.Filename, s.pos.Line, s.text)
	}
	return out
}

// lgHeld is one lock in the held set: its canonical site and where this
// execution acquired it.
type lgHeld struct {
	id  string
	pos token.Position
}

// lgCall is one synchronous module-internal call site.
type lgCall struct {
	callee *types.Func
	pos    token.Position
}

// lgHeldCall is a call made while at least one named lock is held.
type lgHeldCall struct {
	held   []lgHeld
	callee *types.Func
	pos    token.Position
}

// lgDirectEdge is an acquire-while-holding observed inside one function.
type lgDirectEdge struct {
	from lgHeld
	toID string
	pos  token.Position
}

// lgFunc is the per-function fact base.
type lgFunc struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	acquires     map[string]lgTrace // direct acquires: site → witness
	calls        []lgCall
	heldAcquires []lgDirectEdge
	heldCalls    []lgHeldCall
}

// lgEdge is one edge of the global order graph with its best witness.
type lgEdge struct {
	from, to string
	witness  lgTrace
}

type lgProgram struct {
	pkgs []*Package

	fns     map[*types.Func]*lgFunc
	fnOrder []*types.Func
	// anons are goroutine and defer bodies: independent executions whose
	// internal ordering counts but whose acquires belong to no caller.
	anons []*lgFunc

	namedTypes []*types.Named
	implCache  map[string][]*types.Func

	summaries map[*types.Func]map[string]lgTrace
	edges     map[[2]string]*lgEdge
}

// indexTypes collects every named non-interface type of the module, for
// interface-dispatch resolution.
func (p *lgProgram) indexTypes() {
	for _, pkg := range p.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			p.namedTypes = append(p.namedTypes, named)
		}
	}
	sort.Slice(p.namedTypes, func(i, j int) bool {
		a, b := p.namedTypes[i].Obj(), p.namedTypes[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
}

// scanAll walks every function declaration of every package.
func (p *lgProgram) scanAll() {
	for _, pkg := range p.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				lf := &lgFunc{fn: obj, pkg: pkg, decl: fd, acquires: make(map[string]lgTrace)}
				s := &lgScan{prog: p, pkg: pkg, out: lf}
				s.scanStmts(fd.Body.List, map[string]lgHeld{})
				p.fns[obj] = lf
				p.fnOrder = append(p.fnOrder, obj)
			}
		}
	}
	sort.Slice(p.fnOrder, func(i, j int) bool {
		a, b := p.fns[p.fnOrder[i]], p.fns[p.fnOrder[j]]
		pa, pb := a.pkg.Fset.Position(a.decl.Pos()), b.pkg.Fset.Position(b.decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Line < pb.Line
	})
}

// lockID canonicalizes a lock receiver expression to its site name:
// "pkgpath.Type.field" for struct-field locks, "pkgpath.var" for
// package-level locks, "" for locals and unnameable receivers (which
// cannot participate in a cross-function order).
func lockID(pkg *Package, recv ast.Expr) string {
	if p, ok := recv.(*ast.ParenExpr); ok {
		return lockID(pkg, p.X)
	}
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return lockID(pkg, u.X)
	}
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
			return ""
		}
		// Package-qualified package-level lock: otherpkg.Mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// lgScan walks one function body tracking held locks, keyed by the
// rendered receiver expression (so a.mu and b.mu are distinct holdings
// even though they share a site).
type lgScan struct {
	prog *lgProgram
	pkg  *Package
	out  *lgFunc
}

func (s *lgScan) pos(p token.Pos) token.Position { return s.pkg.Fset.Position(p) }

// acquire records taking the lock behind recv at pos.
func (s *lgScan) acquire(recv ast.Expr, pos token.Pos, held map[string]lgHeld) {
	key := renderExpr(s.pkg.Fset, recv)
	id := lockID(s.pkg, recv)
	at := s.pos(pos)
	if id != "" {
		if _, ok := s.out.acquires[id]; !ok {
			s.out.acquires[id] = lgTrace{{pos: at, text: "acquires " + id}}
		}
		for _, h := range sortedHeld(held) {
			if h.id == "" {
				continue
			}
			s.out.heldAcquires = append(s.out.heldAcquires, lgDirectEdge{from: h, toID: id, pos: at})
		}
	}
	held[key] = lgHeld{id: id, pos: at}
}

func (s *lgScan) release(recv ast.Expr, held map[string]lgHeld) {
	delete(held, renderExpr(s.pkg.Fset, recv))
}

// scanStmts processes a statement list with the given held set (mutated
// in place), returning whether the list always terminates before falling
// through.
func (s *lgScan) scanStmts(stmts []ast.Stmt, held map[string]lgHeld) bool {
	for _, st := range stmts {
		if s.scanStmt(st, held) {
			return true
		}
	}
	return false
}

func (s *lgScan) scanStmt(st ast.Stmt, held map[string]lgHeld) bool {
	switch t := st.(type) {
	case *ast.ExprStmt:
		if call, ok := t.X.(*ast.CallExpr); ok {
			if recv, op := lockMethod(s.pkg, call); recv != nil {
				if lockAcquireOps[op] {
					s.acquire(recv, call.Lparen, held)
				} else {
					s.release(recv, held)
				}
				return false
			}
		}
		s.scanExpr(t.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function. Any other deferred call runs at return, outside this
		// scan's held tracking; its arguments are evaluated now.
		if recv, op := lockMethod(s.pkg, t.Call); recv != nil && !lockAcquireOps[op] {
			return false
		}
		for _, arg := range t.Call.Args {
			s.scanExpr(arg, held)
		}
		s.scanDetachedFuncLits(t.Call)
	case *ast.GoStmt:
		// The goroutine is its own execution: it inherits no holdings and
		// contributes none to this function's summary.
		for _, arg := range t.Call.Args {
			s.scanExpr(arg, held)
		}
		s.scanDetachedFuncLits(t.Call)
	case *ast.SendStmt:
		s.scanExpr(t.Chan, held)
		s.scanExpr(t.Value, held)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			s.scanExpr(e, held)
		}
		for _, e := range t.Lhs {
			s.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		s.scanExpr(t, held)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			s.scanExpr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return t.Tok == token.GOTO
	case *ast.IfStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		s.scanExpr(t.Cond, held)
		thenHeld := copyHeld(held)
		elseHeld := copyHeld(held)
		if recv, _, negated := tryLockCond(s.pkg, t.Init, t.Cond); recv != nil {
			into := thenHeld
			if negated {
				into = elseHeld
			}
			// The successful TryLock is an acquire in that branch.
			s.acquire(recv, t.Cond.Pos(), into)
		}
		thenTerm := s.scanStmts(t.Body.List, thenHeld)
		elseTerm := false
		if t.Else != nil {
			elseTerm = s.scanStmt(t.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			replaceHeld(held, intersectHeld(thenHeld, elseHeld))
		}
	case *ast.BlockStmt:
		return s.scanStmts(t.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(t.Stmt, held)
	case *ast.ForStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		if t.Cond != nil {
			s.scanExpr(t.Cond, held)
		}
		body := copyHeld(held)
		s.scanStmts(t.Body.List, body)
		if t.Post != nil {
			s.scanStmt(t.Post, body)
		}
	case *ast.RangeStmt:
		s.scanExpr(t.X, held)
		body := copyHeld(held)
		s.scanStmts(t.Body.List, body)
	case *ast.SelectStmt:
		for _, c := range t.Body.List {
			cc := c.(*ast.CommClause)
			body := copyHeld(held)
			s.scanStmts(cc.Body, body)
		}
	case *ast.SwitchStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		if t.Tag != nil {
			s.scanExpr(t.Tag, held)
		}
		s.scanCases(t.Body.List, held)
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		s.scanCases(t.Body.List, held)
	}
	return false
}

func (s *lgScan) scanCases(clauses []ast.Stmt, held map[string]lgHeld) {
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		body := copyHeld(held)
		s.scanStmts(cc.Body, body)
	}
}

// scanExpr records the synchronous calls under n. Function literals are
// scanned inline: their bodies may run on this execution, so their facts
// join this function's (held set starts empty — a literal called while
// holding is covered by the call-site tracking of its invoker).
func (s *lgScan) scanExpr(n ast.Node, held map[string]lgHeld) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			s.scanStmts(t.Body.List, map[string]lgHeld{})
			return false
		case *ast.CallExpr:
			if recv, op := lockMethod(s.pkg, t); recv != nil {
				// TryLock in a guard position is handled at the if; a bare
				// acquire expression elsewhere is recorded pessimistically.
				if lockAcquireOps[op] && !isTryOp(op) {
					s.acquire(recv, t.Lparen, held)
				}
				return true
			}
			s.recordCall(t, held)
		}
		return true
	})
}

// scanDetachedFuncLits scans function literals under n as independent
// executions (goroutine/defer bodies).
func (s *lgScan) scanDetachedFuncLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			anon := &lgFunc{fn: s.out.fn, pkg: s.pkg, decl: s.out.decl, acquires: make(map[string]lgTrace)}
			inner := &lgScan{prog: s.prog, pkg: s.pkg, out: anon}
			inner.scanStmts(fl.Body.List, map[string]lgHeld{})
			s.prog.anons = append(s.prog.anons, anon)
			return false
		}
		return true
	})
}

// recordCall resolves call's static target; module-internal targets are
// recorded for summary propagation, and for edge construction when locks
// are held.
func (s *lgScan) recordCall(call *ast.CallExpr, held map[string]lgHeld) {
	var ident *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		ident = fun.Sel
	case *ast.Ident:
		ident = fun
	default:
		return
	}
	fn, ok := s.pkg.Info.Uses[ident].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if !isModuleInternal(fn.Pkg().Path(), s.pkg.Path) {
		return
	}
	at := s.pos(call.Lparen)
	s.out.calls = append(s.out.calls, lgCall{callee: fn, pos: at})
	hs := sortedHeld(held)
	var named []lgHeld
	for _, h := range hs {
		if h.id != "" {
			named = append(named, h)
		}
	}
	if len(named) > 0 {
		s.out.heldCalls = append(s.out.heldCalls, lgHeldCall{held: named, callee: fn, pos: at})
	}
}

// resolveCallees maps a called function object to the module functions
// that may execute: the function itself when concrete, or every module
// implementation when it is an interface method.
func (p *lgProgram) resolveCallees(fn *types.Func) []*types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() == nil || !types.IsInterface(sig.Recv().Type()) {
		if _, ok := p.fns[fn]; ok {
			return []*types.Func{fn}
		}
		return nil
	}
	key := fn.FullName()
	if impls, ok := p.implCache[key]; ok {
		return impls
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*types.Func
	for _, named := range p.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, ok := p.fns[m]; ok {
			impls = append(impls, m)
		}
	}
	p.implCache[key] = impls
	return impls
}

// computeSummaries derives, for every function, the set of lock sites it
// may acquire transitively, each with its best (shortest, then
// lexicographically first) witness chain.
func (p *lgProgram) computeSummaries() {
	for _, fobj := range p.fnOrder {
		sum := make(map[string]lgTrace, len(p.fns[fobj].acquires))
		for id, tr := range p.fns[fobj].acquires {
			sum[id] = tr
		}
		p.summaries[fobj] = sum
	}
	for changed := true; changed; {
		changed = false
		for _, fobj := range p.fnOrder {
			lf := p.fns[fobj]
			sum := p.summaries[fobj]
			for _, c := range lf.calls {
				for _, callee := range p.resolveCallees(c.callee) {
					if callee == fobj {
						continue
					}
					for id, ctrace := range p.summaries[callee] {
						trace := append(lgTrace{{pos: c.pos, text: "calls " + callee.FullName()}}, ctrace...)
						if betterTrace(trace, sum[id]) {
							sum[id] = trace
							changed = true
						}
					}
				}
			}
		}
	}
}

// betterTrace reports whether a should replace b: b absent, a shorter, or
// a lexicographically first at equal length (the total order that makes
// the fixpoint deterministic regardless of iteration order).
func betterTrace(a, b lgTrace) bool {
	if b == nil {
		return true
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return strings.Join(a.render(), "|") < strings.Join(b.render(), "|")
}

// buildEdges assembles the global order graph from direct edges and from
// held calls joined with callee summaries.
func (p *lgProgram) buildEdges() {
	all := make([]*lgFunc, 0, len(p.fnOrder)+len(p.anons))
	for _, fobj := range p.fnOrder {
		all = append(all, p.fns[fobj])
	}
	all = append(all, p.anons...)
	for _, lf := range all {
		for _, de := range lf.heldAcquires {
			p.addEdge(de.from.id, de.toID, lgTrace{
				{pos: de.from.pos, text: "holding " + de.from.id},
				{pos: de.pos, text: "acquires " + de.toID},
			})
		}
		for _, hc := range lf.heldCalls {
			for _, callee := range p.resolveCallees(hc.callee) {
				sum := p.summaries[callee]
				for _, id := range sortedTraceKeys(sum) {
					for _, h := range hc.held {
						trace := append(lgTrace{
							{pos: h.pos, text: "holding " + h.id},
							{pos: hc.pos, text: "calls " + callee.FullName()},
						}, sum[id]...)
						p.addEdge(h.id, id, trace)
					}
				}
			}
		}
	}
}

func (p *lgProgram) addEdge(from, to string, witness lgTrace) {
	if from == "" || to == "" {
		return
	}
	key := [2]string{from, to}
	if e, ok := p.edges[key]; ok {
		if !betterTrace(witness, e.witness) {
			return
		}
	}
	p.edges[key] = &lgEdge{from: from, to: to, witness: witness}
}

// report removes allowlisted edges, finds cycles and renders diagnostics.
func (p *lgProgram) report(cfg LockGraphConfig) []Diagnostic {
	var diags []Diagnostic
	for _, allow := range cfg.AllowedEdges {
		key := [2]string{allow.From, allow.To}
		if _, ok := p.edges[key]; !ok {
			diags = append(diags, Diagnostic{
				Pass: "lockgraph",
				Message: fmt.Sprintf(
					"stale allowlist entry %s → %s: no such edge exists — remove it", allow.From, allow.To),
			})
			continue
		}
		delete(p.edges, key)
	}

	adj := make(map[string][]string)
	nodes := map[string]bool{}
	for key := range p.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, n := range order {
		sort.Strings(adj[n])
	}

	for _, scc := range stronglyConnected(order, adj) {
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		selfLoop := len(scc) == 1 && p.edges[[2]string{scc[0], scc[0]}] != nil
		if len(scc) < 2 && !selfLoop {
			continue
		}
		cycle := shortestCycle(scc[0], inSCC, adj)
		var notes []string
		for i := 0; i+1 < len(cycle); i++ {
			e := p.edges[[2]string{cycle[i], cycle[i+1]}]
			notes = append(notes, fmt.Sprintf("edge %s → %s:", e.from, e.to))
			for _, line := range e.witness.render() {
				notes = append(notes, "  "+line)
			}
		}
		first := p.edges[[2]string{cycle[0], cycle[1]}]
		diags = append(diags, Diagnostic{
			Pos:     first.witness[0].pos,
			Pass:    "lockgraph",
			Message: fmt.Sprintf("lock-order cycle (%d locks): %s", len(cycle)-1, strings.Join(cycle, " → ")),
			Notes:   notes,
		})
	}
	return diags
}

// stronglyConnected is a deterministic iterative Tarjan over the sorted
// node list; returned components are sorted internally and by their
// smallest member.
func stronglyConnected(order []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		ni   int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ni < len(adj[f.node]) {
				w := adj[f.node][f.ni]
				f.ni++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Node finished: pop, propagate lowlink, emit SCC at roots.
			if low[f.node] == index[f.node] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.node {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// shortestCycle finds, by BFS restricted to the SCC, the shortest cycle
// through start, returned as [start, ..., start].
func shortestCycle(start string, inSCC map[string]bool, adj map[string][]string) []string {
	if contains(adj[start], start) {
		return []string{start, start}
	}
	parent := map[string]string{}
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, w := range adj[n] {
			if !inSCC[w] {
				continue
			}
			if w == start {
				// Close the cycle: walk parents back to start.
				path := []string{start}
				for at := n; at != start; at = parent[at] {
					path = append(path, at)
				}
				path = append(path, start)
				// path is reversed (start, n, ..., start) — reverse the middle.
				for i, j := 1, len(path)-2; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			if !visited[w] {
				visited[w] = true
				parent[w] = n
				queue = append(queue, w)
			}
		}
	}
	// SCC guarantees a cycle exists; unreachable.
	return []string{start, start}
}

func sortedHeld(held map[string]lgHeld) []lgHeld {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lgHeld, 0, len(keys))
	for _, k := range keys {
		out = append(out, held[k])
	}
	return out
}

func sortedTraceKeys(m map[string]lgTrace) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func copyHeld(m map[string]lgHeld) map[string]lgHeld {
	out := make(map[string]lgHeld, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func replaceHeld(dst, src map[string]lgHeld) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(a, b map[string]lgHeld) map[string]lgHeld {
	out := make(map[string]lgHeld)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}
