package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadLockGraphFixture loads one known-bad corpus package from
// testdata/lockgraph under a synthetic import path.
func loadLockGraphFixture(t *testing.T, dir, asPath string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "lockgraph", dir), asPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg
}

// renderAll renders diagnostics with notes, one string per diagnostic,
// exactly as cmd/odplint prints them.
func renderAll(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Render()
	}
	return out
}

// TestLockGraphTwoLockCycle proves the pass rejects the classic AB/BA
// inversion, with the exact cycle statement and the full witness chain
// for both edges.
func TestLockGraphTwoLockCycle(t *testing.T) {
	pkg := loadLockGraphFixture(t, "twolock", "odp/internal/twolock")
	got := renderAll(Run([]*Package{pkg}, []Analyzer{NewLockGraph(LockGraphConfig{})}))
	want := []string{
		"testdata/lockgraph/twolock/twolock.go:21:11: [lockgraph] lock-order cycle (2 locks): " +
			"odp/internal/twolock.A.mu → odp/internal/twolock.B.mu → odp/internal/twolock.A.mu\n" +
			"\tedge odp/internal/twolock.A.mu → odp/internal/twolock.B.mu:\n" +
			"\t  testdata/lockgraph/twolock/twolock.go:21: holding odp/internal/twolock.A.mu\n" +
			"\t  testdata/lockgraph/twolock/twolock.go:22: acquires odp/internal/twolock.B.mu\n" +
			"\tedge odp/internal/twolock.B.mu → odp/internal/twolock.A.mu:\n" +
			"\t  testdata/lockgraph/twolock/twolock.go:30: holding odp/internal/twolock.B.mu\n" +
			"\t  testdata/lockgraph/twolock/twolock.go:31: acquires odp/internal/twolock.A.mu",
	}
	diffStrings(t, got, want)
}

// TestLockGraphThreeLockCycleThroughCall proves cycle detection composes
// across function calls: the X → Y edge only exists through grabY, and
// the witness chain must show the call step.
func TestLockGraphThreeLockCycleThroughCall(t *testing.T) {
	pkg := loadLockGraphFixture(t, "threelock", "odp/internal/threelock")
	got := renderAll(Run([]*Package{pkg}, []Analyzer{NewLockGraph(LockGraphConfig{})}))
	want := []string{
		"testdata/lockgraph/threelock/threelock.go:34:11: [lockgraph] lock-order cycle (3 locks): " +
			"odp/internal/threelock.X.mu → odp/internal/threelock.Y.mu → odp/internal/threelock.Z.mu → odp/internal/threelock.X.mu\n" +
			"\tedge odp/internal/threelock.X.mu → odp/internal/threelock.Y.mu:\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:34: holding odp/internal/threelock.X.mu\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:35: calls odp/internal/threelock.grabY\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:27: acquires odp/internal/threelock.Y.mu\n" +
			"\tedge odp/internal/threelock.Y.mu → odp/internal/threelock.Z.mu:\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:41: holding odp/internal/threelock.Y.mu\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:42: acquires odp/internal/threelock.Z.mu\n" +
			"\tedge odp/internal/threelock.Z.mu → odp/internal/threelock.X.mu:\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:49: holding odp/internal/threelock.Z.mu\n" +
			"\t  testdata/lockgraph/threelock/threelock.go:50: acquires odp/internal/threelock.X.mu",
	}
	diffStrings(t, got, want)
}

// TestLockGraphInterfaceDispatch proves an edge hidden behind an
// interface call is found: Q is held across Grabber.Grab, whose only
// module implementation acquires P.
func TestLockGraphInterfaceDispatch(t *testing.T) {
	pkg := loadLockGraphFixture(t, "iface", "odp/internal/iface")
	got := renderAll(Run([]*Package{pkg}, []Analyzer{NewLockGraph(LockGraphConfig{})}))
	want := []string{
		"testdata/lockgraph/iface/iface.go:40:12: [lockgraph] lock-order cycle (2 locks): " +
			"odp/internal/iface.P.mu → odp/internal/iface.Q.mu → odp/internal/iface.P.mu\n" +
			"\tedge odp/internal/iface.P.mu → odp/internal/iface.Q.mu:\n" +
			"\t  testdata/lockgraph/iface/iface.go:40: holding odp/internal/iface.P.mu\n" +
			"\t  testdata/lockgraph/iface/iface.go:41: acquires odp/internal/iface.Q.mu\n" +
			"\tedge odp/internal/iface.Q.mu → odp/internal/iface.P.mu:\n" +
			"\t  testdata/lockgraph/iface/iface.go:33: holding odp/internal/iface.Q.mu\n" +
			"\t  testdata/lockgraph/iface/iface.go:34: calls (*odp/internal/iface.P).Grab\n" +
			"\t  testdata/lockgraph/iface/iface.go:18: acquires odp/internal/iface.P.mu",
	}
	diffStrings(t, got, want)
}

// TestLockGraphAllowlist pins the ordered-lock allowlist: breaking the
// cycle by declaring one edge intentional silences the finding, and an
// entry that matches no real edge is itself a finding.
func TestLockGraphAllowlist(t *testing.T) {
	pkg := loadLockGraphFixture(t, "twolock", "odp/internal/twolock")
	cfg := LockGraphConfig{AllowedEdges: []LockOrderEdge{{
		From:   "odp/internal/twolock.B.mu",
		To:     "odp/internal/twolock.A.mu",
		Reason: "fixture: declares the BA order intentional to break the cycle",
	}}}
	if got := Run([]*Package{pkg}, []Analyzer{NewLockGraph(cfg)}); len(got) != 0 {
		t.Fatalf("allowlisted edge still reported: %q", renderAll(got))
	}

	stale := LockGraphConfig{AllowedEdges: []LockOrderEdge{{
		From:   "odp/internal/twolock.A.mu",
		To:     "odp/internal/twolock.Z.mu",
		Reason: "fixture: matches nothing",
	}}}
	got := renderAll(Run([]*Package{pkg}, []Analyzer{NewLockGraph(stale)}))
	wantStale := "stale allowlist entry odp/internal/twolock.A.mu → odp/internal/twolock.Z.mu: no such edge exists — remove it"
	foundStale := false
	for _, g := range got {
		if strings.Contains(g, wantStale) {
			foundStale = true
		}
	}
	if !foundStale {
		t.Errorf("no stale-entry finding in %q", got)
	}
	// The unbroken cycle must still be reported alongside the stale entry.
	if len(got) != 2 {
		t.Errorf("got %d diagnostics, want stale entry + cycle: %q", len(got), got)
	}
}

// diffStrings compares rendered diagnostics pairwise with a readable
// failure message.
func diffStrings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:\n%s\nwant:\n%s",
			len(got), len(want), strings.Join(got, "\n---\n"), strings.Join(want, "\n---\n"))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
		}
	}
}
