// Package lint is the platform's custom static-analysis suite.
//
// The value of the ODP engineering model is that its transparency
// machinery — proxies, channels, capsules — is modular and selective.
// That claim only holds as long as no code path quietly bypasses a layer,
// blocks the world inside a critical section, or lets the wire codec
// drift away from the data model it carries. Each analyzer here encodes
// one such invariant, previously enforced only by convention and review:
//
//   - mutexheld: no channel send/receive, select, WaitGroup.Wait or
//     network transmission (transport send, RPC invoke, capsule invoke)
//     while a sync.Mutex or sync.RWMutex is held. Functions whose name
//     ends in "Locked" or whose doc comment says "called with ... held"
//     are analyzed as if a lock were held on entry.
//   - lockgraph: whole-repo static deadlock freedom. Every named lock
//     site (struct-field mutexes, package-level locks) becomes a node;
//     acquiring B while holding A — directly or through any chain of
//     calls, including interface dispatch — is an edge; a cycle in the
//     resulting order graph is a potential deadlock and is reported with
//     a full witness chain. Intentional hierarchies are declared in the
//     ordered-lock allowlist.
//   - detclock: outside the sanctioned gateways (internal/clock, the
//     netsim fabric, the benchmark harness), no direct use of time.Now,
//     time.Sleep, timers, tickers or the global math/rand source, so that
//     time-driven mechanisms stay deterministic under test.
//   - layering: the import graph respects the engineering model — the
//     computational layers reach the network only through the rpc/core
//     proxy layers, and the low layers (wire, transport, netsim) never
//     import upward.
//   - wiretotal: the wire codecs stay total over the computational data
//     model — every value kind is handled by every encoder and decoder,
//     and every exported field of the reference type survives both
//     codecs.
//   - ctxdrop: a function that binds a context.Context parameter to a
//     name must read it — otherwise the cancellation chain is silently
//     cut. Implementations that genuinely ignore cancellation declare
//     it by naming the parameter _.
//   - obsleak: a span minted by obs.Collector.Begin/BeginChild must be
//     released — reach End, or escape to code that can — on some path;
//     a forgotten span leaks its pooled storage and drops its subtree
//     from the trace ring.
//   - envaudit: the §5 transparency catalogue stays honest — every Env
//     constraint field is woven into an enforcing mechanism by
//     core.Publish, maps to a channel-stage span kind, and is exercised
//     by at least one test or example; every span kind is asserted
//     somewhere (or carries a documented exemption).
//
// A finding can be suppressed at the site with a
// `//lint:ignore <pass> <reason>` comment on the same line or the line
// directly above. Suppressions are never silent: they are counted,
// reported by cmd/odplint, and a suppression that no longer matches any
// finding is itself a diagnostic, so stale ignores cannot accumulate.
//
// The suite is built on the standard library only: go/parser, go/ast and
// go/types with a source importer. It is wired into tier-1 via
// lint_test.go (the repo must produce zero diagnostics) and is runnable
// standalone as cmd/odplint (with -json for machine-readable output).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Pass names the analyzer that produced it.
	Pass string
	// Message describes the violated invariant.
	Message string
	// Notes carries supporting detail — for lockgraph, one witness step
	// per line of the cycle's acquire chain.
	Notes []string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// Render renders the diagnostic with its notes indented beneath it.
func (d Diagnostic) Render() string {
	if len(d.Notes) == 0 {
		return d.String()
	}
	return d.String() + "\n\t" + strings.Join(d.Notes, "\n\t")
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports violations.
type Analyzer interface {
	// Name identifies the pass in diagnostics.
	Name() string
	// Run analyzes one package.
	Run(pkg *Package) []Diagnostic
}

// ProgramAnalyzer is an analyzer that needs the whole program at once —
// lockgraph (the order graph spans packages) and envaudit (constraints,
// mechanisms and tests live in different packages). Run on individual
// packages returns nil; RunProgram does the work.
type ProgramAnalyzer interface {
	Analyzer
	// RunProgram analyzes the full set of loaded packages.
	RunProgram(pkgs []*Package) []Diagnostic
}

// DefaultAnalyzers returns the full suite configured for this repository.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewMutexHeld(DefaultMutexHeldConfig()),
		NewLockGraph(DefaultLockGraphConfig()),
		NewDetClock(DefaultDetClockConfig()),
		NewLayering(DefaultLayeringConfig()),
		NewWireTotal(),
		NewCtxDrop(),
		NewObsLeak(),
		NewEnvAudit(DefaultEnvAuditConfig()),
	}
}

// Suppression is one diagnostic silenced by a //lint:ignore comment.
type Suppression struct {
	// Directive locates the ignore comment.
	Directive token.Position
	// Reason is the comment's stated justification.
	Reason string
	// Diagnostic is the silenced finding.
	Diagnostic Diagnostic
}

// Result is the outcome of a full analysis run.
type Result struct {
	// Diagnostics are the active findings, sorted by position. Includes
	// meta-findings for stale or malformed //lint:ignore comments.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by //lint:ignore comments, sorted
	// by position. They fail nothing but are reported so suppressions
	// cannot accumulate unseen.
	Suppressed []Suppression
}

// Run applies each analyzer and returns the active diagnostics sorted by
// position, with //lint:ignore suppressions applied. Use RunDetailed when
// the suppression list itself is needed.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	return RunDetailed(pkgs, analyzers).Diagnostics
}

// RunDetailed applies each analyzer to the loaded program and resolves
// //lint:ignore directives, returning both the active findings and the
// suppressed ones.
func RunDetailed(pkgs []*Package, analyzers []Analyzer) Result {
	var raw []Diagnostic
	for _, a := range analyzers {
		if pa, ok := a.(ProgramAnalyzer); ok {
			raw = append(raw, pa.RunProgram(pkgs)...)
			continue
		}
		for _, pkg := range pkgs {
			raw = append(raw, a.Run(pkg)...)
		}
	}
	directives := collectIgnoreDirectives(pkgs)
	res := applySuppressions(raw, directives)
	sortDiags(res.Diagnostics)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		return positionLess(res.Suppressed[i].Diagnostic.Pos, res.Suppressed[j].Diagnostic.Pos, "", "")
	})
	return res
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		return positionLess(diags[i].Pos, diags[j].Pos, diags[i].Pass, diags[j].Pass)
	})
}

func positionLess(a, b token.Position, passA, passB string) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return passA < passB
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	pass   string
	reason string
	used   bool
}

const ignorePrefix = "//lint:ignore"

// collectIgnoreDirectives scans every loaded file's comments for
// //lint:ignore directives, keyed by filename. Malformed directives
// (missing pass or reason) surface later as diagnostics.
func collectIgnoreDirectives(pkgs []*Package) map[string][]*ignoreDirective {
	out := make(map[string][]*ignoreDirective)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
					pass, reason, _ := strings.Cut(rest, " ")
					d := &ignoreDirective{pos: pos, pass: pass, reason: strings.TrimSpace(reason)}
					out[pos.Filename] = append(out[pos.Filename], d)
				}
			}
		}
	}
	return out
}

// applySuppressions partitions raw findings into active and suppressed. A
// directive matches a diagnostic of its named pass on the directive's own
// line (trailing comment) or the line directly below (comment above the
// statement). Stale and malformed directives become diagnostics.
func applySuppressions(raw []Diagnostic, directives map[string][]*ignoreDirective) Result {
	var res Result
	for _, d := range raw {
		suppressed := false
		for _, dir := range directives[d.Pos.Filename] {
			if dir.pass != d.Pass || dir.reason == "" {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				dir.used = true
				res.Suppressed = append(res.Suppressed, Suppression{
					Directive:  dir.pos,
					Reason:     dir.reason,
					Diagnostic: d,
				})
				suppressed = true
				break
			}
		}
		if !suppressed {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	// Every directive must be well-formed and must suppress something:
	// an ignore that outlives its finding is dead weight and gets
	// reported until it is removed.
	var files []string
	for f := range directives {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, dir := range directives[f] {
			switch {
			case dir.pass == "" || dir.reason == "":
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Pos:     dir.pos,
					Pass:    "lintignore",
					Message: "malformed //lint:ignore: want \"//lint:ignore <pass> <reason>\"",
				})
			case !dir.used:
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Pos:     dir.pos,
					Pass:    "lintignore",
					Message: fmt.Sprintf("stale //lint:ignore %s: suppresses no finding — remove it", dir.pass),
				})
			}
		}
	}
	return res
}
