// Package lint is the platform's custom static-analysis suite.
//
// The value of the ODP engineering model is that its transparency
// machinery — proxies, channels, capsules — is modular and selective.
// That claim only holds as long as no code path quietly bypasses a layer,
// blocks the world inside a critical section, or lets the wire codec
// drift away from the data model it carries. Each analyzer here encodes
// one such invariant, previously enforced only by convention and review:
//
//   - mutexheld: no channel send/receive, select, WaitGroup.Wait or
//     network transmission (transport send, RPC invoke, capsule invoke)
//     while a sync.Mutex or sync.RWMutex is held. Functions whose name
//     ends in "Locked" or whose doc comment says "called with ... held"
//     are analyzed as if a lock were held on entry.
//   - detclock: outside the sanctioned gateways (internal/clock, the
//     netsim fabric, the benchmark harness), no direct use of time.Now,
//     time.Sleep, timers, tickers or the global math/rand source, so that
//     time-driven mechanisms stay deterministic under test.
//   - layering: the import graph respects the engineering model — the
//     computational layers reach the network only through the rpc/core
//     proxy layers, and the low layers (wire, transport, netsim) never
//     import upward.
//   - wiretotal: the wire codecs stay total over the computational data
//     model — every value kind is handled by every encoder and decoder,
//     and every exported field of the reference type survives both
//     codecs.
//   - ctxdrop: a function that binds a context.Context parameter to a
//     name must read it — otherwise the cancellation chain is silently
//     cut. Implementations that genuinely ignore cancellation declare
//     it by naming the parameter _.
//   - obsleak: a span minted by obs.Collector.Begin/BeginChild must be
//     released — reach End, or escape to code that can — on some path;
//     a forgotten span leaks its pooled storage and drops its subtree
//     from the trace ring.
//
// The suite is built on the standard library only: go/parser, go/ast and
// go/types with a source importer. It is wired into tier-1 via
// lint_test.go (the repo must produce zero diagnostics) and is runnable
// standalone as cmd/odplint.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Pass names the analyzer that produced it.
	Pass string
	// Message describes the violated invariant.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports violations.
type Analyzer interface {
	// Name identifies the pass in diagnostics.
	Name() string
	// Run analyzes one package.
	Run(pkg *Package) []Diagnostic
}

// DefaultAnalyzers returns the full suite configured for this repository.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewMutexHeld(DefaultMutexHeldConfig()),
		NewDetClock(DefaultDetClockConfig()),
		NewLayering(DefaultLayeringConfig()),
		NewWireTotal(),
		NewCtxDrop(),
		NewObsLeak(),
	}
}

// Run applies each analyzer to each package and returns all diagnostics
// sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags = append(diags, a.Run(pkg)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return diags
}
