package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// NewWireTotal creates the pass that keeps the wire codecs total over the
// computational data model, so codec and types cannot drift apart. It
// applies to any package shaped like a codec package — one declaring the
// Kind enumeration, the KindOf classifier and the Ref reference type —
// and checks:
//
//   - every encoder type switch (a type switch whose default clause
//     rejects with ErrBadValue) covers exactly the dynamic types KindOf
//     classifies;
//   - every decoder kind switch (a switch over a Kind-typed tag whose
//     default rejects with ErrCorrupt) covers every declared Kind
//     constant;
//   - every decoder name switch (a switch over a string tag whose
//     default rejects with ErrCorrupt) covers exactly the names in the
//     kindNames table, as must the kind tags emitted into the textual
//     codec's tagged envelope;
//   - every exported field of Ref is touched by every encoder and every
//     decoder function, and the textual mirror struct (taggedRef) has
//     exactly Ref's exported fields.
func NewWireTotal() Analyzer { return &wireTotal{} }

type wireTotal struct{}

func (*wireTotal) Name() string { return "wiretotal" }

// wireShape is what the pass discovers about a codec package.
type wireShape struct {
	modelTypes []string        // rendered case types of KindOf's type switch
	kindConsts []string        // names of package-level Kind constants
	kindNames  []string        // value strings of the kindNames table
	refType    *types.Named    // the Ref struct
	taggedType *types.Named    // the tagged envelope struct, if any
	mirrorType *types.Named    // the taggedRef mirror struct, if any
	encoders   []*ast.FuncDecl // functions with an ErrBadValue-default type switch
	decoders   []*ast.FuncDecl // functions with an ErrCorrupt-default kind/name switch
}

func (a *wireTotal) Run(pkg *Package) []Diagnostic {
	shape, ok := a.discover(pkg)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Pass:    a.Name(),
			Message: fmt.Sprintf(format, args...),
		})
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkSwitches(pkg, shape, fd, report)
		}
	}
	a.checkTaggedKinds(pkg, shape, report)
	a.checkRefCoverage(pkg, shape, report)
	a.checkMirror(shape, report)
	return diags
}

// discover classifies pkg and gathers its model facts. ok is false when
// the package is not codec-shaped.
func (a *wireTotal) discover(pkg *Package) (*wireShape, bool) {
	scope := pkg.Types.Scope()
	kindObj, _ := scope.Lookup("Kind").(*types.TypeName)
	kindOfObj, _ := scope.Lookup("KindOf").(*types.Func)
	refObj, _ := scope.Lookup("Ref").(*types.TypeName)
	if kindObj == nil || kindOfObj == nil || refObj == nil {
		return nil, false
	}
	shape := &wireShape{}
	if named, ok := refObj.Type().(*types.Named); ok {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			shape.refType = named
		}
	}
	if shape.refType == nil {
		return nil, false
	}
	if obj, ok := scope.Lookup("tagged").(*types.TypeName); ok {
		shape.taggedType, _ = obj.Type().(*types.Named)
	}
	if obj, ok := scope.Lookup("taggedRef").(*types.TypeName); ok {
		shape.mirrorType, _ = obj.Type().(*types.Named)
	}

	// Kind constants, in declaration order.
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Type() == kindObj.Type() {
			shape.kindConsts = append(shape.kindConsts, name)
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.Name == "KindOf" && d.Recv == nil && d.Body != nil {
					shape.modelTypes = typeSwitchCases(pkg, d.Body)
				}
			case *ast.GenDecl:
				shape.kindNames = append(shape.kindNames, kindNamesValues(d)...)
			}
		}
	}
	if len(shape.modelTypes) == 0 {
		return nil, false
	}

	// Classify encoders and decoders.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "KindOf" {
				continue
			}
			if hasSwitchWithDefaultError(pkg, fd, "ErrBadValue", true) {
				shape.encoders = append(shape.encoders, fd)
			}
			if hasSwitchWithDefaultError(pkg, fd, "ErrCorrupt", false) {
				shape.decoders = append(shape.decoders, fd)
			}
		}
	}
	return shape, true
}

// checkSwitches verifies totality of the model dispatches in fd.
func (a *wireTotal) checkSwitches(pkg *Package, shape *wireShape, fd *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch sw := n.(type) {
		case *ast.TypeSwitchStmt:
			if !defaultMentions(sw.Body, "ErrBadValue") {
				return true
			}
			got := typeSwitchCaseSet(pkg, sw)
			diffSets(got, shape.modelTypes, func(missing string) {
				report(sw.Switch, "%s: encoder type switch misses data-model type %s", fd.Name.Name, missing)
			}, func(extra string) {
				report(sw.Switch, "%s: encoder type switch handles %s, which KindOf does not classify", fd.Name.Name, extra)
			})
		case *ast.SwitchStmt:
			if sw.Tag == nil || !defaultMentions(sw.Body, "ErrCorrupt") {
				return true
			}
			tagType := pkg.Info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			if named, ok := tagType.(*types.Named); ok && named.Obj().Name() == "Kind" && named.Obj().Pkg() == pkg.Types {
				got := switchCaseIdents(sw)
				diffSets(got, shape.kindConsts, func(missing string) {
					report(sw.Switch, "%s: decoder kind switch misses %s", fd.Name.Name, missing)
				}, func(extra string) {
					report(sw.Switch, "%s: decoder kind switch handles unknown kind %s", fd.Name.Name, extra)
				})
			} else if basic, ok := tagType.Underlying().(*types.Basic); ok && basic.Kind() == types.String && len(shape.kindNames) > 0 {
				got := switchCaseStrings(sw)
				diffSets(got, shape.kindNames, func(missing string) {
					report(sw.Switch, "%s: decoder name switch misses kind %q", fd.Name.Name, missing)
				}, func(extra string) {
					report(sw.Switch, "%s: decoder name switch handles unknown kind %q", fd.Name.Name, extra)
				})
			}
		}
		return true
	})
}

// checkTaggedKinds verifies that the kind tags written into the tagged
// envelope (field K) are exactly the kindNames set.
func (a *wireTotal) checkTaggedKinds(pkg *Package, shape *wireShape, report func(token.Pos, string, ...interface{})) {
	if shape.taggedType == nil || len(shape.kindNames) == 0 {
		return
	}
	emitted := map[string]bool{}
	var first token.Pos
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || namedOf(pkg.Info.TypeOf(lit)) != shape.taggedType {
				return true
			}
			if first == token.NoPos {
				first = lit.Pos()
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "K" {
					continue
				}
				if s, ok := stringLit(kv.Value); ok {
					emitted[s] = true
				}
			}
			return true
		})
	}
	if len(emitted) == 0 {
		return
	}
	var got []string
	for s := range emitted {
		got = append(got, s)
	}
	diffSets(got, shape.kindNames, func(missing string) {
		report(first, "textual encoder emits no tagged value for kind %q", missing)
	}, func(extra string) {
		report(first, "textual encoder emits unknown kind tag %q", extra)
	})
}

// checkRefCoverage verifies every exported Ref field is read or written
// by every encoder and decoder.
func (a *wireTotal) checkRefCoverage(pkg *Package, shape *wireShape, report func(token.Pos, string, ...interface{})) {
	fields := exportedFields(shape.refType)
	if len(fields) == 0 {
		return
	}
	check := func(fds []*ast.FuncDecl, role string) {
		for _, fd := range fds {
			used := refFieldUses(pkg, shape.refType, fd)
			for _, f := range fields {
				if !used[f] {
					report(fd.Pos(), "%s %s does not cover field %s.%s: codec and type have drifted",
						role, fd.Name.Name, shape.refType.Obj().Name(), f)
				}
			}
		}
	}
	check(shape.encoders, "encoder")
	check(shape.decoders, "decoder")
}

// checkMirror verifies the textual mirror struct declares exactly Ref's
// exported fields.
func (a *wireTotal) checkMirror(shape *wireShape, report func(token.Pos, string, ...interface{})) {
	if shape.mirrorType == nil {
		return
	}
	diffSets(exportedFields(shape.mirrorType), exportedFields(shape.refType), func(missing string) {
		report(shape.mirrorType.Obj().Pos(), "%s lacks field %s declared on %s",
			shape.mirrorType.Obj().Name(), missing, shape.refType.Obj().Name())
	}, func(extra string) {
		report(shape.mirrorType.Obj().Pos(), "%s declares field %s that %s does not have",
			shape.mirrorType.Obj().Name(), extra, shape.refType.Obj().Name())
	})
}

// --- helpers ---

// typeSwitchCases returns the rendered case types of the first type
// switch in body.
func typeSwitchCases(pkg *Package, body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		if sw, ok := n.(*ast.TypeSwitchStmt); ok && out == nil {
			out = typeSwitchCaseSet(pkg, sw)
			return false
		}
		return true
	})
	return out
}

// typeSwitchCaseSet renders every case type of sw.
func typeSwitchCaseSet(pkg *Package, sw *ast.TypeSwitchStmt) []string {
	var out []string
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			out = append(out, renderExpr(pkg.Fset, e))
		}
	}
	return out
}

// switchCaseIdents returns the identifier names used as cases of sw.
func switchCaseIdents(sw *ast.SwitchStmt) []string {
	var out []string
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if id, ok := e.(*ast.Ident); ok {
				out = append(out, id.Name)
			}
		}
	}
	return out
}

// switchCaseStrings returns the string-literal cases of sw.
func switchCaseStrings(sw *ast.SwitchStmt) []string {
	var out []string
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s, ok := stringLit(e); ok {
				out = append(out, s)
			}
		}
	}
	return out
}

// stringLit unquotes e when it is a string literal.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// defaultMentions reports whether the switch body's default clause
// references an identifier with the given name.
func defaultMentions(body *ast.BlockStmt, name string) bool {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok || cc.List != nil {
			continue
		}
		found := false
		for _, st := range cc.Body {
			ast.Inspect(st, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
		}
		return found
	}
	return false
}

// hasSwitchWithDefaultError reports whether fd contains a qualifying
// model dispatch: a type switch (typeSwitch true) or value switch whose
// default clause references errName.
func hasSwitchWithDefaultError(pkg *Package, fd *ast.FuncDecl, errName string, typeSwitch bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch sw := n.(type) {
		case *ast.TypeSwitchStmt:
			if typeSwitch && defaultMentions(sw.Body, errName) {
				found = true
			}
		case *ast.SwitchStmt:
			if !typeSwitch && sw.Tag != nil && defaultMentions(sw.Body, errName) {
				found = true
			}
		}
		return !found
	})
	return found
}

// kindNamesValues extracts the value strings of a `var kindNames =
// map[...]string{...}` declaration.
func kindNamesValues(d *ast.GenDecl) []string {
	if d.Tok != token.VAR {
		return nil
	}
	var out []string
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name != "kindNames" || i >= len(vs.Values) {
				continue
			}
			lit, ok := vs.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, el := range lit.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if s, ok := stringLit(kv.Value); ok {
						out = append(out, s)
					}
				}
			}
		}
	}
	return out
}

// exportedFields lists the exported field names of a named struct type.
func exportedFields(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			out = append(out, f.Name())
		}
	}
	return out
}

// refFieldUses collects which fields of refType fd touches, via selector
// or composite-literal key.
func refFieldUses(pkg *Package, refType *types.Named, fd *ast.FuncDecl) map[string]bool {
	used := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.SelectorExpr:
			if namedOf(pkg.Info.TypeOf(t.X)) == refType {
				used[t.Sel.Name] = true
			}
		case *ast.CompositeLit:
			if namedOf(pkg.Info.TypeOf(t)) == refType {
				for _, el := range t.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							used[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return used
}

// diffSets reports, deterministically, elements of want missing from got
// and elements of got not in want.
func diffSets(got, want []string, missing, extra func(string)) {
	gs, ws := map[string]bool{}, map[string]bool{}
	for _, g := range got {
		gs[g] = true
	}
	for _, w := range want {
		ws[w] = true
	}
	var miss, ext []string
	for _, w := range want {
		if !gs[w] {
			miss = append(miss, w)
		}
	}
	for _, g := range got {
		if !ws[g] {
			ext = append(ext, g)
		}
	}
	sort.Strings(miss)
	sort.Strings(ext)
	for _, m := range miss {
		missing(m)
	}
	for _, e := range ext {
		extra(e)
	}
}
