package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MutexHeldConfig configures the mutexheld pass.
type MutexHeldConfig struct {
	// Blocking maps a package path to the functions and methods in it
	// that transmit on the network or block indefinitely, and therefore
	// must never be called with a mutex held. Entries are either a bare
	// name ("send") or receiver-qualified ("Endpoint.Send").
	Blocking map[string][]string
}

// DefaultMutexHeldConfig lists this platform's transmission and blocking
// primitives.
func DefaultMutexHeldConfig() MutexHeldConfig {
	return MutexHeldConfig{
		Blocking: map[string][]string{
			"sync":                   {"WaitGroup.Wait"},
			"odp/internal/transport": {"Endpoint.Send"},
			"odp/internal/netsim":    {"Fabric.send", "endpoint.Send", "endpoint.deliver"},
			"odp/internal/rpc":       {"Client.Call", "Client.Announce"},
			"odp/internal/capsule":   {"Capsule.Invoke"},
			"odp/internal/group":     {"Member.call", "Member.multicastDeliver", "Member.multicastView"},
		},
	}
}

// NewMutexHeld creates the pass that forbids channel operations and
// network transmission while a sync.Mutex or sync.RWMutex is held — the
// class of bug behind the at-most-once ack race (DESIGN.md): anything
// that can block or re-enter the network stack inside a critical section
// couples lock hold time to network latency and invites deadlock.
func NewMutexHeld(cfg MutexHeldConfig) Analyzer { return &mutexHeld{cfg: cfg} }

type mutexHeld struct {
	cfg MutexHeldConfig
}

func (*mutexHeld) Name() string { return "mutexheld" }

// heldContractRe matches doc comments that declare a lock-held calling
// contract, e.g. "Called with lm.mu held."
var heldContractRe = regexp.MustCompile(`(?i)called with .*\b(held|locked)\b`)

func (a *mutexHeld) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]bool{}
			if heldContext(fd) {
				held["(caller's mutex)"] = true
			}
			s := &mutexScan{pkg: pkg, pass: a}
			s.scanStmts(fd.Body.List, held)
			diags = append(diags, s.diags...)
		}
	}
	return diags
}

// heldContext reports whether fd is, by convention, always called with a
// lock held: its name ends in "Locked" or its doc comment declares the
// contract.
func heldContext(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return fd.Doc != nil && heldContractRe.MatchString(fd.Doc.Text())
}

// mutexScan walks one function body tracking the set of held mutexes.
type mutexScan struct {
	pkg   *Package
	pass  *mutexHeld
	diags []Diagnostic
}

func (s *mutexScan) report(pos token.Pos, format string, args ...interface{}) {
	s.diags = append(s.diags, Diagnostic{
		Pos:     s.pkg.Fset.Position(pos),
		Pass:    s.pass.Name(),
		Message: fmt.Sprintf(format, args...),
	})
}

// scanStmts processes a statement list with the given held set (mutated
// in place), returning whether the list always terminates (return, panic,
// goto) before falling through.
func (s *mutexScan) scanStmts(stmts []ast.Stmt, held map[string]bool) bool {
	for _, st := range stmts {
		if s.scanStmt(st, held) {
			return true
		}
	}
	return false
}

// scanStmt processes one statement, returning true when control never
// falls through to the next statement.
func (s *mutexScan) scanStmt(st ast.Stmt, held map[string]bool) bool {
	switch t := st.(type) {
	case *ast.ExprStmt:
		if call, ok := t.X.(*ast.CallExpr); ok {
			if mu, op := s.lockOp(call); mu != "" {
				// A TryLock whose result is discarded is treated as an
				// acquire: the author clearly believed it succeeds.
				if lockAcquireOps[op] {
					held[mu] = true
				} else {
					delete(held, mu)
				}
				return false
			}
		}
		s.checkExpr(t.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			s.report(t.Arrow, "channel send while %s is held", anyHeld(held))
		}
		s.checkExpr(t.Chan, held)
		s.checkExpr(t.Value, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// function; a deferred anything-else runs after the body, so its
		// arguments are evaluated now but the call is not.
		if mu, _ := s.lockOp(t.Call); mu == "" {
			for _, arg := range t.Call.Args {
				s.checkExpr(arg, held)
			}
			s.scanFuncLits(t.Call)
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently without the caller's locks.
		for _, arg := range t.Call.Args {
			s.checkExpr(arg, held)
		}
		s.scanFuncLits(t.Call)
	case *ast.AssignStmt:
		for _, e := range t.Rhs {
			s.checkExpr(e, held)
		}
		for _, e := range t.Lhs {
			s.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		s.checkExpr(t, held)
	case *ast.ReturnStmt:
		for _, e := range t.Results {
			s.checkExpr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return t.Tok == token.GOTO
	case *ast.IfStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		s.checkExpr(t.Cond, held)
		thenHeld := copySet(held)
		elseHeld := copySet(held)
		// A TryLock guard holds the lock exactly in the branch where it
		// succeeded.
		if recv, _, negated := tryLockCond(s.pkg, t.Init, t.Cond); recv != nil {
			mu := renderExpr(s.pkg.Fset, recv)
			if negated {
				elseHeld[mu] = true
			} else {
				thenHeld[mu] = true
			}
		}
		thenTerm := s.scanStmts(t.Body.List, thenHeld)
		elseTerm := false
		if t.Else != nil {
			elseTerm = s.scanStmt(t.Else, elseHeld)
		}
		// The held set after the if is the intersection of the branches
		// that fall through; a branch that returns does not constrain it.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceSet(held, elseHeld)
		case elseTerm:
			replaceSet(held, thenHeld)
		default:
			replaceSet(held, intersect(thenHeld, elseHeld))
		}
	case *ast.BlockStmt:
		return s.scanStmts(t.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(t.Stmt, held)
	case *ast.ForStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		if t.Cond != nil {
			s.checkExpr(t.Cond, held)
		}
		body := copySet(held)
		s.scanStmts(t.Body.List, body)
		if t.Post != nil {
			s.scanStmt(t.Post, body)
		}
	case *ast.RangeStmt:
		if len(held) > 0 && s.isChannelType(t.X) {
			s.report(t.For, "range over channel while %s is held", anyHeld(held))
		}
		s.checkExpr(t.X, held)
		body := copySet(held)
		s.scanStmts(t.Body.List, body)
	case *ast.SelectStmt:
		// A select with a default clause never blocks; one without can
		// park the goroutine while the mutex is held.
		if len(held) > 0 && !hasDefaultClause(t) {
			s.report(t.Select, "select while %s is held", anyHeld(held))
		}
		for _, c := range t.Body.List {
			cc := c.(*ast.CommClause)
			body := copySet(held)
			s.scanStmts(cc.Body, body)
		}
	case *ast.SwitchStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		if t.Tag != nil {
			s.checkExpr(t.Tag, held)
		}
		s.scanCases(t.Body.List, held)
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			s.scanStmt(t.Init, held)
		}
		s.scanCases(t.Body.List, held)
	}
	return false
}

// scanCases processes switch case bodies with independent copies of the
// held set.
func (s *mutexScan) scanCases(clauses []ast.Stmt, held map[string]bool) {
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		body := copySet(held)
		s.scanStmts(cc.Body, body)
	}
}

// checkExpr reports channel receives and blocking calls inside expr when
// a mutex is held, and always analyzes function literals afresh (their
// bodies run with their own lock discipline).
func (s *mutexScan) checkExpr(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			inner := &mutexScan{pkg: s.pkg, pass: s.pass}
			inner.scanStmts(t.Body.List, map[string]bool{})
			s.diags = append(s.diags, inner.diags...)
			return false
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && len(held) > 0 {
				s.report(t.OpPos, "channel receive while %s is held", anyHeld(held))
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				if name, ok := s.blockingCallee(t); ok {
					s.report(t.Lparen, "call to %s while %s is held", name, anyHeld(held))
				}
			}
		}
		return true
	})
}

// scanFuncLits analyzes any function literals under n with an empty held
// set.
func (s *mutexScan) scanFuncLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			inner := &mutexScan{pkg: s.pkg, pass: s.pass}
			inner.scanStmts(fl.Body.List, map[string]bool{})
			s.diags = append(s.diags, inner.diags...)
			return false
		}
		return true
	})
}

// lockOp classifies call as a lock acquire/release operation (shared
// definition in lockcommon.go: sync mutexes, sync.Locker values and
// structural lockers, TryLock variants included), returning the rendered
// receiver expression and the operation name, or "","" when it is not
// one.
func (s *mutexScan) lockOp(call *ast.CallExpr) (mu, op string) {
	recv, op := lockMethod(s.pkg, call)
	if recv == nil {
		return "", ""
	}
	return renderExpr(s.pkg.Fset, recv), op
}

// blockingCallee resolves call's static target and reports whether it is
// in the configured blocking set.
func (s *mutexScan) blockingCallee(call *ast.CallExpr) (string, bool) {
	var ident *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		ident = fun.Sel
	case *ast.Ident:
		ident = fun
	default:
		return "", false
	}
	fn, ok := s.pkg.Info.Uses[ident].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	names, ok := s.pass.cfg.Blocking[fn.Pkg().Path()]
	if !ok {
		return "", false
	}
	qualified := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			qualified = named.Obj().Name() + "." + fn.Name()
		}
	}
	for _, n := range names {
		if n == qualified || n == fn.Name() {
			return fn.Pkg().Name() + "." + qualified, true
		}
	}
	return "", false
}

// hasDefaultClause reports whether sel has a default clause (Comm == nil),
// making it non-blocking.
func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isChannelType reports whether expr has channel type.
func (s *mutexScan) isChannelType(expr ast.Expr) bool {
	tv, ok := s.pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// namedOf unwraps pointers to reach a named type.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// anyHeld picks a deterministic representative of the held set for the
// diagnostic text.
func anyHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func replaceSet(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// renderExpr prints an expression compactly for use as a map key and in
// diagnostics.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
