package lint

import (
	"go/constant"
	"go/types"
	"path/filepath"
	"testing"
)

// TestLoaderBuildConstraints proves the loader applies build constraints
// the way `go build` would: the tagged fixture only type-checks if the
// //go:build-gated and GOOS-suffixed siblings (each redeclaring Mode) are
// excluded, and its _test.go file lands in TestFiles without being
// type-checked (it references an undefined identifier).
func TestLoaderBuildConstraints(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", "tagged"), "odp/internal/tagged")
	if err != nil {
		t.Fatalf("build-constrained fixture failed to load (gated files not excluded?): %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d non-test files, want 1 (tagged.go only)", len(pkg.Files))
	}
	c, ok := pkg.Types.Scope().Lookup("Mode").(*types.Const)
	if !ok {
		t.Fatal("Mode constant not type-checked")
	}
	if v := constant.StringVal(c.Val()); v != "portable" {
		t.Fatalf("Mode = %q, want the unconstrained declaration %q", v, "portable")
	}
	if len(pkg.TestFiles) != 1 {
		t.Fatalf("got %d test files, want 1 (tagged_test.go, parsed but unchecked)", len(pkg.TestFiles))
	}
}

// TestLoaderNetsimRealtimeSplit pins, at loader level, the split that
// scopes netsim's wall-clock license: realtime.go IS loaded (no build
// constraint hides it), and only the detclock file exemption — not the
// loader — keeps its time.AfterFunc out of the diagnostics.
func TestLoaderNetsimRealtimeSplit(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("odp/internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	haveRealtime := false
	for _, f := range pkg.Files {
		if filepath.Base(pkg.Fset.Position(f.Package).Filename) == "realtime.go" {
			haveRealtime = true
		}
	}
	if !haveRealtime {
		t.Fatal("loader dropped realtime.go: the wall-clock fallback would escape analysis entirely")
	}
	if ds := Run([]*Package{pkg}, []Analyzer{NewDetClock(DefaultDetClockConfig())}); len(ds) != 0 {
		t.Errorf("default exemption no longer covers realtime.go: %v", ds)
	}
	bare := DefaultDetClockConfig()
	bare.ExemptFiles = nil
	if ds := Run([]*Package{pkg}, []Analyzer{NewDetClock(bare)}); len(ds) == 0 {
		t.Error("without the file exemption realtime.go produced no findings: its wall-clock use is invisible to the pass")
	}
}
