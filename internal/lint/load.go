package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("odp/internal/rpc").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// TestFiles are the package's _test.go sources, parsed but NOT
	// type-checked (external test packages would need their own check
	// pass). Coverage-auditing passes (envaudit) read them syntactically;
	// the invariant passes never analyze them.
	TestFiles []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports are resolved from source on
// disk, everything else through the stdlib source importer.
type Loader struct {
	// ModulePath is the module's declared path ("odp").
	ModulePath string
	// ModuleDir is the directory containing go.mod.
	ModuleDir string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  modDir,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and reads its
// module path.
func findModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package of the module (skipping testdata and
// hidden directories), returning them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoSources(p) {
			paths = append(paths, l.importPathFor(p))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
}

// hasGoSources reports whether dir directly contains non-test .go files.
func hasGoSources(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the module package at the given import
// path, reusing earlier loads.
func (l *Loader) Load(path string) (*Package, error) {
	return l.loadDirAs(l.dirFor(path), path)
}

// LoadDirAs loads the package in dir under the given synthetic import
// path. It exists for fixture corpora kept outside the module tree
// (testdata), which must still be able to import module packages.
func (l *Loader) LoadDirAs(dir, asPath string) (*Package, error) {
	return l.loadDirAs(dir, asPath)
}

func (l *Loader) loadDirAs(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Honour build constraints (//go:build lines and GOOS/GOARCH
		// filename suffixes) for the loader's own build context: a gated
		// file that the compiler would not see must not reach the type
		// checker, where its declarations could collide with the
		// ungated implementation it replaces.
		if match, err := build.Default.MatchFile(dir, e.Name()); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == l.ModulePath || strings.HasPrefix(p, l.ModulePath+"/") {
				pkg, err := l.Load(p)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return l.std.Import(p)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
