package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewCtxDrop creates the pass that keeps cancellation propagating: a
// function that binds a context.Context parameter to a name and then
// never reads it has silently cut the cancellation chain — callers
// believe their deadline or Close reaches the work, but it does not.
//
// The fix is always one of two honest states: propagate the context to
// the blocking work, or rename the parameter to _ to declare in the
// signature that this implementation ignores cancellation. Uses inside
// closures count (capturing the context is propagation); unnamed and
// blank parameters are exempt by construction.
func NewCtxDrop() Analyzer { return &ctxDrop{} }

type ctxDrop struct{}

func (*ctxDrop) Name() string { return "ctxdrop" }

func (a *ctxDrop) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var (
				ftype *ast.FuncType
				body  *ast.BlockStmt
				label string
			)
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
				label = fn.Name.Name
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
				label = "function literal"
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					obj := pkg.Info.Defs[name]
					if obj == nil || !isContextType(obj.Type()) {
						continue
					}
					if !usesObject(pkg, body, obj) {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Fset.Position(name.Pos()),
							Pass: a.Name(),
							Message: fmt.Sprintf(
								"context parameter %q is dropped by %s: propagate it or rename it to _",
								name.Name, label),
						})
					}
				}
			}
			return true
		})
	}
	return diags
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesObject reports whether any identifier inside body resolves to obj.
func usesObject(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
