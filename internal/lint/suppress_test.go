package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestSuppressionSemantics pins the //lint:ignore contract on the
// suppress fixture: a reasoned directive silences exactly its finding, a
// directive that matches nothing is a stale finding, a directive without
// a reason is malformed (and suppresses nothing — its neighbour finding
// stays active).
func TestSuppressionSemantics(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", "suppress"), "odp/internal/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res := RunDetailed([]*Package{pkg}, []Analyzer{NewMutexHeld(DefaultMutexHeldConfig())})

	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pass, d.Message))
	}
	want := []string{
		"suppress.go:24: [lintignore] stale //lint:ignore mutexheld: suppresses no finding — remove it",
		`suppress.go:31: [lintignore] malformed //lint:ignore: want "//lint:ignore <pass> <reason>"`,
		"suppress.go:32: [mutexheld] channel send while q.mu is held",
	}
	diffStrings(t, got, want)

	if len(res.Suppressed) != 1 {
		t.Fatalf("got %d suppressions, want 1: %+v", len(res.Suppressed), res.Suppressed)
	}
	s := res.Suppressed[0]
	if s.Directive.Line != 17 || s.Diagnostic.Pos.Line != 18 || s.Diagnostic.Pass != "mutexheld" {
		t.Errorf("suppression matched wrong finding: directive line %d, finding %s",
			s.Directive.Line, s.Diagnostic)
	}
	if s.Reason != "fixture: proves a reasoned ignore suppresses exactly one finding" {
		t.Errorf("reason not preserved: %q", s.Reason)
	}
}

// TestSuppressionSameLine pins the trailing-comment form: a directive on
// the finding's own line suppresses it too.
func TestSuppressionSameLine(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", "sameline"), "odp/internal/sameline")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res := RunDetailed([]*Package{pkg}, []Analyzer{NewMutexHeld(DefaultMutexHeldConfig())})
	if len(res.Diagnostics) != 0 {
		t.Errorf("same-line directive did not suppress: %+v", res.Diagnostics)
	}
	if len(res.Suppressed) != 1 {
		t.Errorf("got %d suppressions, want 1", len(res.Suppressed))
	}
}

// TestSuppressionWrongPassStaysActive proves a directive naming a
// different pass does not silence a finding, and is reported stale.
func TestSuppressionWrongPassStaysActive(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", "wrongpass"), "odp/internal/wrongpass")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res := RunDetailed([]*Package{pkg}, []Analyzer{NewMutexHeld(DefaultMutexHeldConfig())})
	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pass, d.Message))
	}
	want := []string{
		"wrongpass.go:16: [lintignore] stale //lint:ignore detclock: suppresses no finding — remove it",
		"wrongpass.go:17: [mutexheld] channel send while q.mu is held",
	}
	diffStrings(t, got, want)
	if len(res.Suppressed) != 0 {
		t.Errorf("wrong-pass directive suppressed something: %+v", res.Suppressed)
	}
}
