// Package iface seeds a two-lock cycle where one edge passes through an
// interface method: the static call target is the interface, and the
// lockgraph pass must resolve it to the module implementation to see the
// acquire behind it.
package iface

import "sync"

// Grabber is the dispatch point: callers hold a lock across Grab without
// knowing which implementation runs.
type Grabber interface{ Grab() }

// P implements Grabber by taking its own lock.
type P struct{ mu sync.Mutex }

// Grab acquires P's lock.
func (p *P) Grab() {
	p.mu.Lock()
	p.mu.Unlock()
}

// Q is the other lock owner.
type Q struct{ mu sync.Mutex }

var (
	pv P
	qv Q
)

// QthenGrab holds Q across an interface call that (in the only module
// implementation) acquires P: the edge Q.mu → P.mu.
func QthenGrab(g Grabber) {
	qv.mu.Lock()
	g.Grab()
	qv.mu.Unlock()
}

// PthenQ acquires Q under P: the edge P.mu → Q.mu, closing the cycle.
func PthenQ() {
	pv.mu.Lock()
	qv.mu.Lock()
	qv.mu.Unlock()
	pv.mu.Unlock()
}
