// Package twolock seeds the classic two-lock deadlock: one execution
// takes A then B, another takes B then A. The lockgraph pass must report
// exactly one cycle with the witness chain for both edges.
package twolock

import "sync"

// A is the first lock owner.
type A struct{ mu sync.Mutex }

// B is the second lock owner.
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// TakeAB acquires A's lock, then B's: the edge A.mu → B.mu.
func TakeAB() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// TakeBA acquires in the opposite order: the edge B.mu → A.mu, closing
// the cycle.
func TakeBA() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
