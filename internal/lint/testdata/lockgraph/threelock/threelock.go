// Package threelock seeds a three-lock cycle where one edge is only
// visible through a call chain: X is held across a call to a helper that
// acquires Y. The lockgraph pass must compose the chain into the edge
// X.mu → Y.mu and report the full cycle X → Y → Z → X with the call step
// in the witness.
package threelock

import "sync"

// X is the first lock owner.
type X struct{ mu sync.Mutex }

// Y is the second lock owner.
type Y struct{ mu sync.Mutex }

// Z is the third lock owner.
type Z struct{ mu sync.Mutex }

var (
	x X
	y Y
	z Z
)

// grabY acquires Y's lock on behalf of its callers.
func grabY() {
	y.mu.Lock()
	y.mu.Unlock()
}

// XthenY holds X across a call that acquires Y: the edge X.mu → Y.mu,
// witnessed through grabY.
func XthenY() {
	x.mu.Lock()
	grabY()
	x.mu.Unlock()
}

// YthenZ acquires Z under Y: the edge Y.mu → Z.mu.
func YthenZ() {
	y.mu.Lock()
	z.mu.Lock()
	z.mu.Unlock()
	y.mu.Unlock()
}

// ZthenX acquires X under Z: the edge Z.mu → X.mu, closing the cycle.
func ZthenX() {
	z.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	z.mu.Unlock()
}
