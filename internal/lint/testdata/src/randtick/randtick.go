// Package randtick is a known-bad detclock fixture: it draws from the
// global math/rand source and starts a wall-clock ticker.
package randtick

import (
	"math/rand"
	"time"
)

// Jitter returns a random duration below d from the shared global source.
func Jitter(d time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(d)))
}

// Poll runs f on a wall-clock cadence.
func Poll(interval time.Duration, f func()) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		f()
	}
}
