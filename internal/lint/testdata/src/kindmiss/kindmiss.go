// Package kindmiss is a known-bad wiretotal fixture: a codec-shaped
// package whose encoder type switch misses a data-model type and whose
// decoder kind switch misses a Kind constant.
package kindmiss

import "errors"

// Kind classifies model values.
type Kind int

// Kinds of the miniature data model.
const (
	KindNil Kind = iota
	KindBool
	KindInt
)

// Errors mirroring the wire package's sentinels.
var (
	ErrBadValue = errors.New("kindmiss: bad value")
	ErrCorrupt  = errors.New("kindmiss: corrupt")
)

// Ref is the reference type.
type Ref struct {
	ID string
}

// KindOf classifies v.
func KindOf(v any) (Kind, error) {
	switch v.(type) {
	case nil:
		return KindNil, nil
	case bool:
		return KindBool, nil
	case int64:
		return KindInt, nil
	}
	return 0, ErrBadValue
}

// Encode serialises v. Its type switch has drifted: int64 joined the
// data model but never got an encoding case.
func Encode(v any, r Ref) (byte, error) {
	_ = r.ID
	switch v.(type) {
	case nil:
		return 0, nil
	case bool:
		return 1, nil
	default:
		return 0, ErrBadValue
	}
}

// Decode rebuilds a value of kind k. Its kind switch has drifted the
// same way: KindInt decodes as corruption.
func Decode(k Kind, r Ref) (any, error) {
	_ = r.ID
	switch k {
	case KindNil:
		return nil, nil
	case KindBool:
		return false, nil
	default:
		return nil, ErrCorrupt
	}
}
