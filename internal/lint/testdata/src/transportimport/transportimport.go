// Package transportimport is a known-bad layering fixture: a
// computational-model package reaching the transport layer directly
// instead of going through the rpc/core proxy layers. The test loads it
// under a computational import path.
package transportimport

import "odp/internal/transport"

// Send bypasses the proxy layers entirely.
func Send(ep transport.Endpoint, to string, pkt []byte) error {
	return ep.Send(to, pkt)
}
