// Package trylock pins the TryLock acquire paths: a successful TryLock
// holds the lock exactly in the branch its guard selects, and a
// discarded TryLock result counts as a plain acquire.
package trylock

import "sync"

// Q couples a lock with a channel so blocking-under-lock is observable.
type Q struct {
	mu sync.Mutex
	ch chan int
}

// Guarded only holds the lock inside the success branch.
func (q *Q) Guarded() {
	if q.mu.TryLock() {
		q.ch <- 1
		q.mu.Unlock()
	}
}

// Negated holds the lock only when the guard fails to take the early
// return — i.e. in the fallthrough.
func (q *Q) Negated() {
	if !q.mu.TryLock() {
		q.ch <- 2
		return
	}
	q.ch <- 3
	q.mu.Unlock()
}

// Bound binds the guard result first; the then-branch still holds.
func (q *Q) Bound() {
	if ok := q.mu.TryLock(); ok {
		q.ch <- 4
		q.mu.Unlock()
	}
}
