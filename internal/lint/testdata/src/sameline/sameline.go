// Package sameline pins the trailing //lint:ignore form.
package sameline

import "sync"

// Q couples a lock with a channel so mutexheld has something to flag.
type Q struct {
	mu sync.Mutex
	ch chan int
}

// Send is a real violation, suppressed by a trailing directive.
func (q *Q) Send() {
	q.mu.Lock()
	q.ch <- 1 //lint:ignore mutexheld fixture: trailing-comment suppression
	q.mu.Unlock()
}
