// Package timecall is a known-bad detclock fixture: a simulation-driven
// package reading and advancing the wall clock directly.
package timecall

import "time"

// Deadline computes an expiry from the wall clock.
func Deadline(ttl time.Duration) time.Time {
	return time.Now().Add(ttl)
}

// Pause stalls the caller on the wall clock.
func Pause(d time.Duration) {
	time.Sleep(d)
}
