// Package ctxdrop is a known-bad ctxdrop fixture: context parameters
// bound to names and then ignored, cutting the cancellation chain.
package ctxdrop

import "context"

// Dropped names its context and never reads it: the caller's deadline
// cannot reach the work below.
func Dropped(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// DroppedInLiteral propagates correctly itself but spawns a literal
// that drops its own context.
func DroppedInLiteral(ctx context.Context) error {
	run := func(ctx context.Context) error {
		return nil
	}
	return run(ctx)
}

// Used propagates the context: legal.
func Used(ctx context.Context) error {
	return ctx.Err()
}

// Captured uses the context only inside a closure — capture is
// propagation, so this is legal.
func Captured(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}

// Blank declares in the signature that cancellation is ignored: legal.
func Blank(_ context.Context) int {
	return 1
}
