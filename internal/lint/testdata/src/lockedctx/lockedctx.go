// Package lockedctx is a known-bad mutexheld fixture: functions whose
// name or doc comment declares a lock-held calling contract perform
// channel operations.
package lockedctx

// S holds a channel drained by lock-held helpers.
type S struct {
	ch chan int
}

// drainLocked pops one element. The "Locked" suffix declares that the
// caller holds s.mu, so the receive blocks with that lock held.
func (s *S) drainLocked() int {
	return <-s.ch
}

// push appends one element. Called with s.mu held.
func (s *S) push(v int) {
	s.ch <- v
}
