// Package lockrecv is a known-bad mutexheld fixture: it receives from a
// channel and waits on a WaitGroup while holding a mutex.
package lockrecv

import "sync"

// Q is a queue guarded by a mutex.
type Q struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

// Get dequeues under q.mu — the receive blocks with the lock held.
func (q *Q) Get() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch
}

// Flush waits for in-flight workers under q.mu.
func (q *Q) Flush() {
	q.mu.Lock()
	q.wg.Wait()
	q.mu.Unlock()
}
