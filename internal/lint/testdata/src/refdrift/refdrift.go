// Package refdrift is a known-bad wiretotal fixture: Ref gained an
// exported field (Epoch) that the decoder never restores and the textual
// mirror struct never received.
package refdrift

import "errors"

// Kind classifies model values.
type Kind int

// Kinds of the miniature data model.
const (
	// KindRef tags references.
	KindRef Kind = iota
)

// Errors mirroring the wire package's sentinels.
var (
	ErrBadValue = errors.New("refdrift: bad value")
	ErrCorrupt  = errors.New("refdrift: corrupt")
)

// Ref is the reference type.
type Ref struct {
	ID    string
	Epoch uint32
}

// taggedRef is the textual mirror of Ref; it lost the Epoch field.
type taggedRef struct {
	ID string
}

// KindOf classifies v.
func KindOf(v any) (Kind, error) {
	switch v.(type) {
	case Ref:
		return KindRef, nil
	}
	return 0, ErrBadValue
}

// Encode serialises v, covering every Ref field.
func Encode(v any) (string, error) {
	switch t := v.(type) {
	case Ref:
		return t.ID + string(rune(t.Epoch)), nil
	default:
		return "", ErrBadValue
	}
}

// Decode rebuilds a Ref; it never restores Epoch.
func Decode(k Kind, s string) (Ref, error) {
	switch k {
	case KindRef:
		return Ref{ID: s}, nil
	default:
		return Ref{}, ErrCorrupt
	}
}

var _ = taggedRef{}
