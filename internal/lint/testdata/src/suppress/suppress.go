// Package suppress exercises //lint:ignore semantics: a matching
// directive silences exactly its finding, a stale directive is itself a
// finding, and a directive without a reason is malformed.
package suppress

import "sync"

// Q couples a lock with a channel so mutexheld has something to flag.
type Q struct {
	mu sync.Mutex
	ch chan int
}

// Send is a real violation, suppressed with a stated reason.
func (q *Q) Send() {
	q.mu.Lock()
	//lint:ignore mutexheld fixture: proves a reasoned ignore suppresses exactly one finding
	q.ch <- 1
	q.mu.Unlock()
}

// Stale carries an ignore that matches nothing.
func (q *Q) Stale() {
	//lint:ignore mutexheld nothing below violates anything
	q.ch <- 2
}

// Malformed carries an ignore with no reason.
func (q *Q) Malformed() {
	q.mu.Lock()
	//lint:ignore mutexheld
	q.ch <- 3
	q.mu.Unlock()
}
