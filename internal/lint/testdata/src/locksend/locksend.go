// Package locksend is a known-bad mutexheld fixture: it sends on a
// channel while holding a mutex.
package locksend

import "sync"

// Q is a queue guarded by a mutex.
type Q struct {
	mu sync.Mutex
	ch chan int
}

// Put enqueues v while still holding q.mu — the send can block forever
// with the lock held.
func (q *Q) Put(v int) {
	q.mu.Lock()
	q.ch <- v
	q.mu.Unlock()
}

// PutSafe is the clean shape: the send happens outside the lock.
func (q *Q) PutSafe(v int) {
	q.mu.Lock()
	ch := q.ch
	q.mu.Unlock()
	ch <- v
}
