package tagged

// This file exists so the loader's TestFiles split is observable: it
// must be parsed (envaudit reads test files) but never type-checked
// (the undefined identifier below would fail the package otherwise).
var _ = definedNowhere
