// Package tagged pins the loader's build-constraint handling: the
// sibling files redeclare Mode behind a //go:build tag and a GOOS
// filename suffix, so the package only type-checks if the loader
// excludes them the way `go build` would.
package tagged

// Mode is redeclared by every excluded sibling.
const Mode = "portable"
