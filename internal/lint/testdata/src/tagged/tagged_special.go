//go:build special

package tagged

// Mode redeclares the portable constant; the "special" tag is never set,
// so a loader that honours //go:build lines must drop this file.
const Mode = "special"
