package tagged

// Mode redeclares the portable constant; the _plan9 filename suffix
// excludes this file everywhere the suite runs.
const Mode = "plan9"
