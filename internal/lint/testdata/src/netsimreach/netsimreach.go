// Package netsimreach is a known-bad layering fixture: a
// computational-model package wiring simulated subnets directly instead
// of letting the sim harness (or the platform façade) own the fabric.
// The sparse-topology surface — AddSubnet, JoinSubnet, LinkSubnets — is
// exactly as restricted as the flat pair-map was. The test loads it
// under a computational import path.
package netsimreach

import "odp/internal/netsim"

// Mesh builds a topology where only the harness may.
func Mesh(f *netsim.Fabric, a, b string) {
	f.AddSubnet(a, netsim.LinkProfile{})
	f.AddSubnet(b, netsim.LinkProfile{})
	f.LinkSubnets(a, b, netsim.LinkProfile{})
}
