// Package wrongpass pins directive/pass matching: an ignore naming a
// different pass must not silence a mutexheld finding.
package wrongpass

import "sync"

// Q couples a lock with a channel so mutexheld has something to flag.
type Q struct {
	mu sync.Mutex
	ch chan int
}

// Send is a real violation; the directive names the wrong pass.
func (q *Q) Send() {
	q.mu.Lock()
	//lint:ignore detclock fixture: names a pass that found nothing here
	q.ch <- 1
	q.mu.Unlock()
}
