// Package lockerval pins the sync.Locker path: a lock held through the
// interface is as held as a concrete mutex.
package lockerval

import "sync"

// S guards its channel with an abstract locker.
type S struct {
	l  sync.Locker
	ch chan int
}

// Blocked sends on a channel while the locker is held.
func (s *S) Blocked() {
	s.l.Lock()
	s.ch <- 1
	s.l.Unlock()
}
