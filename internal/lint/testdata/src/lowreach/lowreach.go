// Package lowreach is a known-bad layering fixture: the test loads it
// under a low-layer import path, so its module-internal import points
// upward through the layering.
package lowreach

import "odp/internal/wire"

// Value re-exports the data model from below — an inverted dependency.
type Value = wire.Value
