// Package obsleak is a known-bad corpus for the obsleak pass: spans begun
// and never released, alongside clean shapes the pass must not flag.
package obsleak

import "odp/internal/obs"

// Leaked begins a span and forgets it: the only use is receiver-only, so
// nothing can ever hand sp back to End.
func Leaked(c *obs.Collector) {
	sp := c.Begin("stub", "op")
	if sp != nil {
		_ = sp.Context()
	}
}

// Discarded drops spans on the floor at the call site.
func Discarded(c *obs.Collector) {
	c.Begin("stub", "op")
	_ = c.BeginChild(obs.SpanContext{}, "rpc.send", "op")
}

// DeferEnd is clean: the deferred End receives the span.
func DeferEnd(c *obs.Collector) {
	sp := c.Begin("stub", "op")
	defer c.End(sp)
}

// DirectEnd is clean: conditional reassignment, receiver-only reads, then
// a direct End (which is nil-safe, so no guard is needed).
func DirectEnd(c *obs.Collector, parent obs.SpanContext) {
	var sp *obs.Span
	if sp = c.BeginChild(parent, "rpc.dispatch", "op"); sp != nil {
		_ = sp.Duration()
	}
	c.End(sp)
}

// HandedOff is clean: passing the span to any function transfers the
// obligation to release it.
func HandedOff(c *obs.Collector) *obs.Span {
	sp := c.Begin("stub", "op")
	return sp
}
