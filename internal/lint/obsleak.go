package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewObsLeak creates the pass that keeps the span pool honest: a span
// minted by (*obs.Collector).Begin or BeginChild must reach End (or
// otherwise escape the function — be passed along, stored or returned) on
// some path, or a sampled call permanently leaks a pooled span and its
// subtree never commits to the ring.
//
// A span is considered released when the identifier it was bound to
// appears as a call argument (End, or any helper that takes it over), is
// returned, is stored into another variable, composite literal or
// channel, or has its address taken into a call. Receiver-only use —
// sp.Context(), sp.Duration() — reads the span but releases nothing, so
// it does not count. Calling Begin/BeginChild and discarding the result
// (expression statement or blank assignment) is flagged at the call.
func NewObsLeak() Analyzer { return &obsLeak{} }

type obsLeak struct{}

func (*obsLeak) Name() string { return "obsleak" }

func (a *obsLeak) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Handled when visiting the enclosing declaration: closures
				// share the declaration's scope, so a span begun in one and
				// ended in another still resolves.
				return true
			default:
				return true
			}
			if body == nil {
				return true
			}
			diags = append(diags, a.checkBody(pkg, body)...)
			return true
		})
	}
	return diags
}

// checkBody finds every Begin/BeginChild call in body (closures
// included), then decides per bound identifier whether the span is ever
// released.
func (a *obsLeak) checkBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	// spans maps each identifier bound to a begun span to the method that
	// minted it and the position of its first binding.
	type origin struct {
		method string
		pos    token.Pos
	}
	spans := make(map[types.Object]origin)

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if method, ok := beginCall(pkg, call); ok {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(call.Pos()),
						Pass: a.Name(),
						Message: fmt.Sprintf(
							"result of Collector.%s is discarded: a sampled span would never be released", method),
					})
				}
			}
		case *ast.AssignStmt:
			// Begin calls are single-valued, so LHS and RHS align
			// pairwise in every legal assignment that contains one.
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				method, ok := beginCall(pkg, call)
				if !ok {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(call.Pos()),
						Pass: a.Name(),
						Message: fmt.Sprintf(
							"result of Collector.%s is discarded: a sampled span would never be released", method),
					})
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, seen := spans[obj]; !seen {
					spans[obj] = origin{method: method, pos: id.Pos()}
				}
			}
		}
		return true
	})

	for obj, o := range spans {
		if !isReleased(pkg, body, obj) {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(o.pos),
				Pass: a.Name(),
				Message: fmt.Sprintf(
					"span %q from Collector.%s never reaches End: release it on every return path",
					obj.Name(), o.method),
			})
		}
	}
	return diags
}

// beginCall reports whether call invokes (*obs.Collector).Begin or
// BeginChild, returning the method name.
func beginCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Begin" && name != "BeginChild" {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	return name, isCollectorType(sig.Recv().Type())
}

// isCollectorType reports whether t is obs.Collector or a pointer to it.
func isCollectorType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "odp/internal/obs" && obj.Name() == "Collector"
}

// isReleased reports whether obj escapes body in a way that can end the
// span: as a call argument (directly or by address), a return value, the
// source of another assignment, a composite-literal element or a channel
// send. A bare read — nil check, receiver of Context()/Duration() — is
// not a release.
func isReleased(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	released := false
	ast.Inspect(body, func(n ast.Node) bool {
		if released {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			for _, arg := range st.Args {
				if isIdentFor(pkg, arg, obj) {
					released = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if isIdentFor(pkg, res, obj) {
					released = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if isIdentFor(pkg, rhs, obj) {
					released = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if isIdentFor(pkg, elt, obj) {
					released = true
					return false
				}
			}
		case *ast.SendStmt:
			if isIdentFor(pkg, st.Value, obj) {
				released = true
				return false
			}
		}
		return true
	})
	return released
}

// isIdentFor reports whether e is obj's identifier, directly or behind a
// single address-of.
func isIdentFor(pkg *Package, e ast.Expr, obj types.Object) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	id, ok := e.(*ast.Ident)
	return ok && pkg.Info.Uses[id] == obj
}
