package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the single definition of what "acquiring a lock" means,
// shared by the mutexheld and lockgraph passes so the two can never
// disagree about the held set. A lock operation is a call to
// Lock/RLock/TryLock/TryRLock (acquire) or Unlock/RUnlock (release) on:
//
//   - a sync.Mutex or sync.RWMutex value,
//   - a sync.Locker interface value (the method object lives in package
//     sync, so dynamic lockers behind the interface are covered), or
//   - a custom locker: any named type whose method set carries both a
//     niladic Lock and a niladic Unlock — the structural sync.Locker
//     contract — so a wrapper type that delegates to an embedded mutex
//     still counts.

// lockAcquireOps classifies each recognized method name: true means the
// operation acquires (TryLock variants conditionally), false releases.
var lockAcquireOps = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": false, "RUnlock": false,
}

// lockMethod classifies call as a lock operation, returning the receiver
// expression and the method name ("Lock", "TryRLock", ...), or nil, ""
// when call is not one.
func lockMethod(pkg *Package, call *ast.CallExpr) (recv ast.Expr, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	name := sel.Sel.Name
	if _, known := lockAcquireOps[name]; !known {
		return nil, ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		return sel.X, name
	}
	if isStructuralLocker(sig.Recv().Type()) {
		return sel.X, name
	}
	return nil, ""
}

// isTryOp reports whether op is a conditional acquire whose result must
// be consulted before the lock is held.
func isTryOp(op string) bool { return op == "TryLock" || op == "TryRLock" }

// isStructuralLocker reports whether t satisfies the sync.Locker contract
// structurally: its method set has niladic Lock and Unlock methods.
func isStructuralLocker(t types.Type) bool {
	return hasNiladicMethod(t, "Lock") && hasNiladicMethod(t, "Unlock")
}

func hasNiladicMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != name {
			continue
		}
		sig := fn.Type().(*types.Signature)
		return sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	return false
}

// tryLockCond recognizes the guarded TryLock idioms inside an if
// statement so held-set tracking can follow them:
//
//	if mu.TryLock() { ... }          → held in the then branch
//	if !mu.TryLock() { return }      → held in the else branch / after
//	if ok := mu.TryLock(); ok { ... }
//
// It returns the receiver expression, the operation, and whether the
// condition is negated. A nil receiver means cond is not a TryLock guard.
func tryLockCond(pkg *Package, init ast.Stmt, cond ast.Expr) (recv ast.Expr, op string, negated bool) {
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		recv, op, _ = tryLockCond(pkg, init, u.X)
		return recv, op, true
	}
	switch c := cond.(type) {
	case *ast.CallExpr:
		if r, o := lockMethod(pkg, c); r != nil && isTryOp(o) {
			return r, o, false
		}
	case *ast.Ident:
		// if ok := mu.TryLock(); ok { ... } — the init assignment binds
		// the condition identifier to the TryLock result.
		as, ok := init.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil, "", false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name != c.Name {
			return nil, "", false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil, "", false
		}
		if r, o := lockMethod(pkg, call); r != nil && isTryOp(o) {
			return r, o, false
		}
	}
	return nil, "", false
}
