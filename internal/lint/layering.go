package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// LayeringConfig configures the layering pass.
type LayeringConfig struct {
	// Restricted maps an import path to the only packages allowed to
	// import it directly. Test files are exempt (the loader never parses
	// them), as is the restricted package itself.
	Restricted map[string][]string
	// LowLayer maps a low-level package to the complete set of
	// module-internal packages it may import; everything else is an
	// upward (layer-inverting) import.
	LowLayer map[string][]string
}

// DefaultLayeringConfig encodes this platform's selective-transparency
// layering: computational-model packages reach the network only through
// the rpc/core/capsule proxy layers (§5 of the paper — transparency
// mechanisms are interposed, never bypassed), and the low layers never
// import upward.
func DefaultLayeringConfig() LayeringConfig {
	return LayeringConfig{
		Restricted: map[string][]string{
			"odp/internal/transport": {
				"odp", // the platform façade assembles the stack
				"odp/internal/rpc",
				"odp/internal/core",
				"odp/internal/capsule",
				"odp/internal/netsim",
			},
			"odp/internal/netsim": {
				"odp",              // façade-level fabric construction only
				"odp/internal/sim", // the simulation harness owns a fabric
			},
		},
		LowLayer: map[string][]string{
			"odp/internal/wire": {},
			// The write coalescer's max-delay flush window is clock
			// driven, and its flushes emit observability spans.
			"odp/internal/transport": {"odp/internal/clock", "odp/internal/obs"},
			// The span collector timestamps on the injected clock and
			// renders snapshots in the wire data model.
			"odp/internal/obs": {"odp/internal/clock", "odp/internal/wire"},
			// The fabric schedules delivery on an injected clock so whole
			// universes run in virtual time.
			"odp/internal/netsim": {"odp/internal/transport", "odp/internal/clock"},
			"odp/internal/clock":  {},
		},
	}
}

// NewLayering creates the import-graph pass.
func NewLayering(cfg LayeringConfig) Analyzer { return &layering{cfg: cfg} }

type layering struct {
	cfg LayeringConfig
}

func (*layering) Name() string { return "layering" }

func (a *layering) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	lowAllowed, isLow := a.cfg.LowLayer[pkg.Path]
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if allowed, ok := a.cfg.Restricted[path]; ok && pkg.Path != path && !contains(allowed, pkg.Path) {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(imp.Pos()),
					Pass: a.Name(),
					Message: fmt.Sprintf(
						"%s imports %s directly: only %s may bypass the proxy layers",
						pkg.Path, path, strings.Join(allowed, ", ")),
				})
			}
			if isLow && isModuleInternal(path, pkg.Path) && !contains(lowAllowed, path) {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(imp.Pos()),
					Pass: a.Name(),
					Message: fmt.Sprintf(
						"low-layer package %s imports %s: lower layers must not reach upward",
						pkg.Path, path),
				})
			}
		}
	}
	return diags
}

// isModuleInternal reports whether path belongs to the same module as
// pkgPath (shares the first path element).
func isModuleInternal(path, pkgPath string) bool {
	mod := pkgPath
	if i := strings.Index(pkgPath, "/"); i >= 0 {
		mod = pkgPath[:i]
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

func contains(xs []string, x string) bool {
	for _, e := range xs {
		if e == x {
			return true
		}
	}
	return false
}
