package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DetClockConfig configures the detclock pass.
type DetClockConfig struct {
	// ExemptPackages may touch the time package and global math/rand
	// directly: the clock gateway itself, the simulation harness (its
	// settle loop watches real goroutines make real progress) and the
	// wall-clock benchmark harness.
	ExemptPackages []string
	// ExemptPrefixes exempts whole subtrees (commands and examples are
	// interactive programs, not simulation-driven mechanisms).
	ExemptPrefixes []string
	// ExemptFiles exempts single files, named "pkgpath/basename". A
	// file-level exemption scopes a package's wall-clock license to the
	// one file that genuinely needs it, so the rest of the package stays
	// under the pass.
	ExemptFiles []string
}

// DefaultDetClockConfig exempts this repository's sanctioned gateways.
// netsim is deliberately NOT package-exempt: since delivery scheduling
// became clock-pluggable, the fabric's only wall-clock touch is the
// real-time fallback in realtime.go.
func DefaultDetClockConfig() DetClockConfig {
	return DetClockConfig{
		ExemptPackages: []string{
			"odp/internal/clock",
			"odp/internal/sim",
			"odp/internal/bench",
		},
		ExemptPrefixes: []string{"odp/cmd/", "odp/examples/"},
		ExemptFiles:    []string{"odp/internal/netsim/realtime.go"},
	}
}

// deniedTimeFuncs are the time-package functions that read or advance the
// wall clock. Types (time.Time, time.Duration) and constants remain free.
var deniedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// deniedRandFuncs are the package-level math/rand functions backed by the
// shared global source. Seeded rand.New(rand.NewSource(...)) generators
// are deterministic and stay legal.
var deniedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// NewDetClock creates the pass that keeps simulation-driven packages off
// the wall clock: mechanisms that sit on the deterministic netsim path
// must take their time from internal/clock so tests can drive them.
func NewDetClock(cfg DetClockConfig) Analyzer { return &detClock{cfg: cfg} }

type detClock struct {
	cfg DetClockConfig
}

func (*detClock) Name() string { return "detclock" }

func (a *detClock) Run(pkg *Package) []Diagnostic {
	for _, p := range a.cfg.ExemptPackages {
		if pkg.Path == p {
			return nil
		}
	}
	for _, p := range a.cfg.ExemptPrefixes {
		if strings.HasPrefix(pkg.Path, p) {
			return nil
		}
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if a.fileExempt(pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. Time.Add, Rand.Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if deniedTimeFuncs[fn.Name()] {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(sel.Pos()),
						Pass: a.Name(),
						Message: fmt.Sprintf(
							"time.%s in simulation-driven package %s: take the time from internal/clock",
							fn.Name(), pkg.Path),
					})
				}
			case "math/rand", "math/rand/v2":
				if deniedRandFuncs[fn.Name()] {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(sel.Pos()),
						Pass: a.Name(),
						Message: fmt.Sprintf(
							"global rand.%s in simulation-driven package %s: use a seeded rand.New(rand.NewSource(...))",
							fn.Name(), pkg.Path),
					})
				}
			}
			return true
		})
	}
	return diags
}

// fileExempt reports whether f matches an ExemptFiles entry. Entries name
// files as "pkgpath/basename", so the exemption cannot silently follow a
// file moved to another package.
func (a *detClock) fileExempt(pkg *Package, f *ast.File) bool {
	if len(a.cfg.ExemptFiles) == 0 {
		return false
	}
	name := pkg.Path + "/" + filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
	for _, e := range a.cfg.ExemptFiles {
		if name == e {
			return true
		}
	}
	return false
}
