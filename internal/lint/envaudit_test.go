package lint

import (
	"strings"
	"testing"
)

// TestEnvAudit drives the transparency audit over the real module with
// deliberately broken configurations: each mutation must produce exactly
// the finding class it seeds. (The unmutated configuration is covered by
// TestRepoIsClean: zero findings.)
func TestEnvAudit(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(cfg EnvAuditConfig) []string {
		var got []string
		for _, d := range Run(pkgs, []Analyzer{NewEnvAudit(cfg)}) {
			got = append(got, d.Message)
		}
		return got
	}
	expectOnly := func(t *testing.T, got []string, want ...string) {
		t.Helper()
		diffStrings(t, got, want)
	}

	t.Run("clean", func(t *testing.T) {
		expectOnly(t, runWith(DefaultEnvAuditConfig()))
	})

	t.Run("missing enforcer config", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		delete(cfg.Enforcers, "Atomic")
		expectOnly(t, runWith(cfg),
			"Env.Atomic has no enforcer configured: add it to EnvAuditConfig.Enforcers")
	})

	t.Run("wrong enforcer pattern", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		cfg.Enforcers["Atomic"] = []string{"nobody.Calls"}
		expectOnly(t, runWith(cfg),
			"Env.Atomic guard in Publish installs none of its enforcers (nobody.Calls): the constraint is silently unenforced")
	})

	t.Run("missing stage mapping", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		delete(cfg.Stages, "Movable")
		expectOnly(t, runWith(cfg),
			"Env.Movable maps to no channel-stage span kind: add it to EnvAuditConfig.Stages")
	})

	t.Run("drifted stage mapping", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		cfg.Stages["Movable"] = "KindTeleport"
		expectOnly(t, runWith(cfg),
			"Env.Movable maps to span kind KindTeleport, which odp/internal/obs does not declare: the audit table has drifted")
	})

	t.Run("unknown field entries rot", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		cfg.Enforcers["Telepathic"] = []string{"mind.Read"}
		cfg.Stages["Telepathic"] = "KindDispatch"
		expectOnly(t, runWith(cfg),
			"EnvAuditConfig.Enforcers names unknown Env field Telepathic — remove it",
			"EnvAuditConfig.Stages names unknown Env field Telepathic — remove it")
	})

	t.Run("unnecessary kind exemption", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		cfg.KindExemptions["KindDispatch"] = "fixture: but tests do assert it"
		got := runWith(cfg)
		if len(got) != 1 || !strings.Contains(got[0],
			`span kind KindDispatch is exempt ("fixture: but tests do assert it") but tests assert it — remove the exemption`) {
			t.Errorf("got %q", got)
		}
	})

	t.Run("unknown kind exemption", func(t *testing.T) {
		cfg := DefaultEnvAuditConfig()
		cfg.KindExemptions["KindTeleport"] = "fixture: no such kind"
		expectOnly(t, runWith(cfg),
			"EnvAuditConfig.KindExemptions names unknown span kind KindTeleport — remove it")
	})
}
