package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The envaudit pass keeps the §5 transparency catalogue honest, in both
// directions ("transparency is an effect", §5.5 — the constraint a test
// weaves must be the mechanism the channel actually runs):
//
//  1. Constraint → mechanism. Every field of core.Env must be read by the
//     weaver (core.Publish) under a guard, and that guard must install a
//     configured enforcing mechanism (txn resource, security guard,
//     recovery log, migration host, lease tracking, instrumentation).
//     A declared constraint the weaver silently drops is the worst kind
//     of transparency bug: the application asked and nobody is enforcing.
//  2. Constraint → channel stage. Every field maps to the span kind of
//     the channel stage that observes its enforcement, so span-tree
//     assertions can prove which path ran. The mapping names obs.Kind*
//     constants and is checked against the obs package, so it cannot
//     drift.
//  3. Coverage. Every Env field must be woven by at least one test or
//     example (the E-series experiments exercise constraints through the
//     same literals), and every span kind must be asserted by some test —
//     or carry a documented exemption in the config. Exemptions that are
//     no longer necessary are themselves findings.
//
// Test sources are inspected syntactically (Package.TestFiles): literal
// Env{...} composite fields and Kind references don't need types.

// EnvAuditConfig configures the envaudit pass.
type EnvAuditConfig struct {
	// CorePackage hosts the Env struct and the weaver.
	CorePackage string
	// ObsPackage hosts the span-kind constants.
	ObsPackage string
	// Weaver is the function that turns Env constraints into an access
	// path.
	Weaver string
	// Enforcers maps each Env field to the enforcing call patterns
	// ("pkg.Func" or "Type.Method"), at least one of which must appear
	// inside a guard that reads the field.
	Enforcers map[string][]string
	// Stages maps each Env field to the obs span-kind constant (by
	// constant name) covering the channel stage that enforces it.
	Stages map[string]string
	// KindExemptions documents span kinds that legitimately have no
	// E-series assertion, with the reason. Any other kind must be
	// referenced by some test file.
	KindExemptions map[string]string
}

// DefaultEnvAuditConfig is this repository's transparency audit table.
func DefaultEnvAuditConfig() EnvAuditConfig {
	return EnvAuditConfig{
		CorePackage: "odp/internal/core",
		ObsPackage:  "odp/internal/obs",
		Weaver:      "Publish",
		Enforcers: map[string][]string{
			// §5.2 concurrency transparency: the generated transactional
			// resource.
			"Atomic": {"txn.NewResource"},
			// §7.1: the generated guard interceptor.
			"Secured": {"security.NewGuard"},
			// §5.5 failure transparency: checkpoint + interaction log on
			// the migration host's access path.
			"Recoverable": {"migrate.WithRecoveryLog"},
			// §5.5 migration transparency: export through the quiescing
			// migration host.
			"Movable": {"Host.Export"},
			// §7.3 distributed GC lease tracking.
			"Leased": {"Collector.Track"},
			// §7.4 management instrumentation interceptor.
			"Managed": {"mgmt.Instrument"},
		},
		Stages: map[string]string{
			// Interceptor- and servant-wrapping mechanisms execute inside
			// server dispatch; the dispatch span is the stage that shows
			// they ran.
			"Atomic":      "KindDispatch",
			"Secured":     "KindDispatch",
			"Recoverable": "KindDispatch",
			"Leased":      "KindDispatch",
			"Managed":     "KindDispatch",
			// Migration's observable effect is the binder re-resolving the
			// moved interface.
			"Movable": "KindResolve",
		},
		KindExemptions: map[string]string{},
	}
}

// NewEnvAudit creates the transparency-annotation audit pass.
func NewEnvAudit(cfg EnvAuditConfig) Analyzer { return &envAudit{cfg: cfg} }

type envAudit struct {
	cfg EnvAuditConfig
}

func (*envAudit) Name() string { return "envaudit" }

// Run is a no-op: constraints, mechanisms and tests live in different
// packages. See RunProgram.
func (*envAudit) Run(*Package) []Diagnostic { return nil }

func (a *envAudit) RunProgram(pkgs []*Package) []Diagnostic {
	var core, obs *Package
	for _, pkg := range pkgs {
		switch pkg.Path {
		case a.cfg.CorePackage:
			core = pkg
		case a.cfg.ObsPackage:
			obs = pkg
		}
	}
	if core == nil || obs == nil {
		// Partial loads (fixture corpora) have nothing to audit.
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos: pos, Pass: a.Name(), Message: fmt.Sprintf(format, args...),
		})
	}

	fields, envPos := envFields(core)
	if fields == nil {
		report(token.Position{}, "package %s declares no Env struct to audit", a.cfg.CorePackage)
		return diags
	}
	kinds := obsKinds(obs)

	weaver := findFuncDecl(core, a.cfg.Weaver)
	if weaver == nil {
		report(token.Position{}, "weaver %s.%s not found", a.cfg.CorePackage, a.cfg.Weaver)
		return diags
	}

	wovenByTests := wovenEnvFields(pkgs)
	assertedKinds := referencedKinds(pkgs, kinds)

	for _, f := range fields {
		pos := envPos[f]
		// 1. Constraint → mechanism: the weaver must guard on the field
		// and install an enforcer inside the guard.
		patterns, configured := a.cfg.Enforcers[f]
		if !configured {
			report(pos, "Env.%s has no enforcer configured: add it to EnvAuditConfig.Enforcers", f)
		} else {
			regions := guardedRegions(core, weaver, f)
			if len(regions) == 0 {
				report(pos, "Env.%s is never read by %s: the constraint has no enforcing stage", f, a.cfg.Weaver)
			} else if !regionsCall(core, regions, patterns) {
				report(pos, "Env.%s guard in %s installs none of its enforcers (%s): the constraint is silently unenforced",
					f, a.cfg.Weaver, strings.Join(patterns, ", "))
			}
		}
		// 2. Constraint → channel stage: the mapping must name a real
		// span kind.
		stage, ok := a.cfg.Stages[f]
		if !ok {
			report(pos, "Env.%s maps to no channel-stage span kind: add it to EnvAuditConfig.Stages", f)
		} else if _, ok := kinds[stage]; !ok {
			report(pos, "Env.%s maps to span kind %s, which %s does not declare: the audit table has drifted",
				f, stage, a.cfg.ObsPackage)
		}
		// 3. Coverage: some test or example must weave the constraint.
		if !wovenByTests[f] {
			report(pos, "Env.%s is woven by no test or example: the constraint has no covering E-series assertion", f)
		}
	}
	// Config entries for fields that no longer exist rot silently.
	fieldSet := map[string]bool{}
	for _, f := range fields {
		fieldSet[f] = true
	}
	for _, f := range sortedStringKeys(a.cfg.Enforcers) {
		if !fieldSet[f] {
			report(token.Position{}, "EnvAuditConfig.Enforcers names unknown Env field %s — remove it", f)
		}
	}
	for _, f := range sortedStringKeys(a.cfg.Stages) {
		if !fieldSet[f] {
			report(token.Position{}, "EnvAuditConfig.Stages names unknown Env field %s — remove it", f)
		}
	}

	// Stage coverage: every span kind needs an asserting test or a
	// documented exemption, and exemptions must stay necessary.
	for _, k := range sortedStringKeys(kinds) {
		reason, exempt := a.cfg.KindExemptions[k]
		switch {
		case exempt && assertedKinds[k]:
			report(kinds[k], "span kind %s is exempt (%q) but tests assert it — remove the exemption", k, reason)
		case !exempt && !assertedKinds[k]:
			report(kinds[k], "span kind %s has no covering E-series assertion: no test references it", k)
		}
	}
	for _, k := range sortedStringKeys(a.cfg.KindExemptions) {
		if _, ok := kinds[k]; !ok {
			report(token.Position{}, "EnvAuditConfig.KindExemptions names unknown span kind %s — remove it", k)
		}
	}
	return diags
}

// envFields returns the Env struct's field names in declaration order and
// each field's position.
func envFields(core *Package) ([]string, map[string]token.Position) {
	for _, f := range core.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Env" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var fields []string
				pos := make(map[string]token.Position)
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						fields = append(fields, name.Name)
						pos[name.Name] = core.Fset.Position(name.Pos())
					}
				}
				return fields, pos
			}
		}
	}
	return nil, nil
}

// obsKinds returns the obs package's Kind* string constants: name →
// declaration position.
func obsKinds(obs *Package) map[string]token.Position {
	kinds := make(map[string]token.Position)
	scope := obs.Types.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Kind") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		kinds[name] = obs.Fset.Position(c.Pos())
	}
	return kinds
}

// findFuncDecl locates a top-level function declaration by name.
func findFuncDecl(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// guardedRegions returns the statement regions of the weaver guarded by a
// condition that reads env.<field>: the then-body of each if whose
// condition mentions the field (any receiver of type-checked selector
// with that field name on an Env-typed value would be ideal; the weaver
// is small enough that a syntactic selector match against `.field` on an
// identifier is exact in practice — the type checker backs it up below).
func guardedRegions(pkg *Package, fd *ast.FuncDecl, field string) []ast.Node {
	var regions []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condReadsEnvField(pkg, ifs.Cond, field) {
			regions = append(regions, ifs.Body)
		}
		return true
	})
	return regions
}

// condReadsEnvField reports whether cond contains a selector env.<field>
// whose base has the core Env type.
func condReadsEnvField(pkg *Package, cond ast.Expr, field string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return true
		}
		tv, ok := pkg.Info.Types[sel.X]
		if !ok || tv.Type == nil {
			return true
		}
		if named := namedOf(tv.Type); named != nil && named.Obj().Name() == "Env" {
			found = true
			return false
		}
		return true
	})
	return found
}

// regionsCall reports whether any of the regions contains a call matching
// one of the patterns ("pkg.Func" for package functions, "Type.Method"
// for methods).
func regionsCall(pkg *Package, regions []ast.Node, patterns []string) bool {
	for _, region := range regions {
		found := false
		ast.Inspect(region, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callMatches(pkg, call, patterns) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// callMatches resolves call's static target and checks it against the
// patterns.
func callMatches(pkg *Package, call *ast.CallExpr, patterns []string) bool {
	var ident *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		ident = fun.Sel
	case *ast.Ident:
		ident = fun
	default:
		return false
	}
	fn, ok := pkg.Info.Uses[ident].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	var qualified string
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			qualified = named.Obj().Name() + "." + fn.Name()
		}
	} else {
		qualified = fn.Pkg().Name() + "." + fn.Name()
	}
	for _, p := range patterns {
		if p == qualified {
			return true
		}
	}
	return false
}

// wovenEnvFields scans every package's test files, plus the example and
// command programs, for Env{...} composite literals and returns the set
// of constraint fields they set.
func wovenEnvFields(pkgs []*Package) map[string]bool {
	woven := make(map[string]bool)
	scanFile := func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isEnvLiteralType(cl.Type) {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					woven[key.Name] = true
				}
			}
			return true
		})
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.TestFiles {
			scanFile(f)
		}
		// Examples and commands weave constraints as documentation-grade
		// usage; they count as coverage the same way tests do.
		if strings.Contains(pkg.Path, "/examples/") || strings.Contains(pkg.Path, "/cmd/") {
			for _, f := range pkg.Files {
				scanFile(f)
			}
		}
	}
	return woven
}

// isEnvLiteralType reports whether a composite literal's type expression
// names Env (bare, or qualified as odp.Env / core.Env).
func isEnvLiteralType(t ast.Expr) bool {
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name == "Env"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Env"
	}
	return false
}

// referencedKinds scans all test files for references to the span-kind
// constants — by name (obs.KindDispatch) or by literal value
// ("rpc.dispatch").
func referencedKinds(pkgs []*Package, kinds map[string]token.Position) map[string]bool {
	valueOf := kindValues(pkgs, kinds)
	asserted := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					if _, ok := kinds[e.Name]; ok {
						asserted[e.Name] = true
					}
				case *ast.BasicLit:
					if e.Kind != token.STRING {
						return true
					}
					for name, val := range valueOf {
						if e.Value == `"`+val+`"` {
							asserted[name] = true
						}
					}
				}
				return true
			})
		}
	}
	return asserted
}

// kindValues resolves each kind constant's string value from the obs
// package's type information.
func kindValues(pkgs []*Package, kinds map[string]token.Position) map[string]string {
	out := make(map[string]string)
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for name := range kinds {
			if c, ok := scope.Lookup(name).(*types.Const); ok && c.Val().Kind() == constant.String {
				out[name] = constant.StringVal(c.Val())
			}
		}
	}
	return out
}

func sortedStringKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
