//go:build race

package odp_test

// raceEnabled reports that this binary carries the race detector.
// Allocation-count gates skip under it: sync.Pool deliberately drops a
// fraction of Puts when racing (to surface retain-after-put bugs), so
// pooled hot paths show allocations production never pays.
const raceEnabled = true
