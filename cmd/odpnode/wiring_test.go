package main

import (
	"context"
	"testing"
	"time"

	"odp"
)

// TestVirtualTimeNodeWiring: a nodeConfig with a clock builds a platform
// whose whole stack runs on it — an invocation completes over a
// virtual-latency fabric without the fake clock ever advancing past the
// link latency in real time.
func TestVirtualTimeNodeWiring(t *testing.T) {
	clk := odp.NewFakeClock(time.Unix(0, 0))
	fabric := odp.NewFabric(
		odp.FabricClock(clk),
		odp.WithDefaultLink(odp.LinkProfile{Latency: time.Millisecond}),
	)
	defer fabric.Close()

	sep, err := fabric.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cep, err := fabric.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	server, err := newNode(sep, nodeConfig{name: "server", clk: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := newNode(cep, nodeConfig{name: "client", relocator: mustEncode(t, server.RelocRef), clk: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if got := server.Clock(); got != odp.Clock(clk) {
		t.Fatalf("server clock = %v, want injected fake", got)
	}

	ref, err := server.Publish("ping", odp.Object{
		Servant: odp.ServantFunc(func(context.Context, string, []odp.Value) (string, []odp.Value, error) {
			return "ok", []odp.Value{"pong"}, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		out string
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, _, err := client.Invoke(context.Background(), ref, "ping", nil)
		done <- result{out, err}
	}()
	// The call crosses the fabric twice (request, reply); nothing moves
	// until the shared clock does.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.out != "ok" {
				t.Fatalf("outcome %q", r.out)
			}
			return
		case <-deadline:
			t.Fatal("virtual-time invocation never completed")
		default:
			clk.Advance(time.Millisecond)
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func mustEncode(t *testing.T, ref odp.Ref) string {
	t.Helper()
	enc, err := odp.EncodeRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
