// Command odpnode runs one ODP node over real TCP, for cross-process
// deployments.
//
// The node hosts a platform (capsule, relocator or remote relocation
// binding, migration host, collector, management agent), optionally a
// trading service, and a demo echo interface. It prints the encoded
// references other processes need to reach it, then serves until
// interrupted.
//
// Example, one shell per process:
//
//	odpnode -name alpha -listen 127.0.0.1:7001 -trader org-a
//	odpnode -name beta  -listen 127.0.0.1:7002 -relocator <ref printed by alpha>
//	odpcall -ref <echo ref printed by alpha> -op echo -arg hello
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"odp"
)

func main() {
	var (
		name       = flag.String("name", "node", "node name (scopes object identifiers)")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		traderCtx  = flag.String("trader", "", "host a trading service under this federation context name")
		storeDir   = flag.String("store", "", "directory for durable storage (default: in-memory)")
		relocator  = flag.String("relocator", "", "encoded reference of an existing relocation service")
		echoSvc    = flag.Bool("echo", true, "publish a demo echo interface")
		traceEvery = flag.Int("trace-every", 0, "sample one trace in n invocations (0 = off; retune live via the obs.sample_every management parameter)")
		batch      = flag.Bool("batch", false, "coalesce writes per destination; two -batch nodes also upgrade to the packed codec in-band")
		series     = flag.Duration("series", 0, "sample the Gather snapshot at this interval so the management \"series\" op serves rates (0 = off)")
		sloP99     = flag.Duration("slo-dispatch-p99", 0, "arm the flight recorder with this dispatch p99 ceiling; breaches land behind the \"blackbox\" op (0 = off)")
	)
	flag.Parse()
	cfg := nodeConfig{
		name:           *name,
		traderCtx:      *traderCtx,
		storeDir:       *storeDir,
		relocator:      *relocator,
		traceEvery:     *traceEvery,
		batch:          *batch,
		series:         *series,
		sloDispatchP99: *sloP99,
	}
	if err := run(*listen, *echoSvc, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(listen string, echoSvc bool, cfg nodeConfig) error {
	name := cfg.name
	ep, err := odp.ListenTCP(listen)
	if err != nil {
		return err
	}
	node, err := newNode(ep, cfg)
	if err != nil {
		return err
	}
	defer node.Close()

	fmt.Printf("node %q listening on %s\n", name, ep.Addr())
	printRef := func(label string, ref odp.Ref) {
		enc, err := odp.EncodeRef(ref)
		if err != nil {
			return
		}
		fmt.Printf("  %-12s %s\n", label+":", enc)
	}
	if node.RelocTable != nil {
		printRef("relocator", node.RelocRef)
	}
	printRef("management", node.Agent.Ref())
	if node.Trader != nil {
		printRef("trader", node.Trader.Ref())
	}
	if echoSvc {
		echoType := odp.Type{
			Name: "Echo",
			Ops: map[string]odp.Operation{
				"echo": {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.String}}},
			},
		}
		ref, err := node.Publish("echo", odp.Object{
			Servant: odp.ServantFunc(func(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
				if op != "echo" {
					return "", nil, fmt.Errorf("echo: no operation %q", op)
				}
				s, _ := args[0].(string)
				return "ok", []odp.Value{name + ": " + strings.ToUpper(s)}, nil
			}),
			Type: echoType,
			Env:  odp.Env{Managed: &odp.ManagedSpec{MetricPrefix: "echo"}},
		})
		if err != nil {
			return err
		}
		printRef("echo", ref)
		if node.Trader != nil {
			if _, err := node.Trader.Advertise(echoType, ref, map[string]odp.Value{"node": name}); err != nil {
				return err
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Println("serving; interrupt to stop")
	<-ctx.Done()
	fmt.Println("shutting down")
	return nil
}
