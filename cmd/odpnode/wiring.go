package main

import (
	"fmt"
	"time"

	"odp"
)

// nodeConfig collects the wiring inputs for one odpnode platform, so the
// flag-driven main path and test harnesses build nodes the same way.
type nodeConfig struct {
	name      string
	traderCtx string
	storeDir  string
	relocator string
	// traceEvery samples one root trace in n (0 = sampling off). The
	// collector itself is always installed: unsampled tracing is free on
	// the hot path, and the "obs.sample_every" management parameter can
	// turn sampling on against a live node.
	traceEvery int
	// batch wraps the endpoint in the write coalescer. Besides datagram
	// amortisation this advertises the packed-codec capability, so two
	// -batch nodes upgrade their connection to ansa-packed/1 in-band;
	// against a non-batching peer everything falls back silently.
	batch bool
	// series > 0 samples the node's Gather snapshot at this interval, so
	// the management "series" op serves rates and odptop shows them.
	series time.Duration
	// sloDispatchP99 > 0 arms the flight recorder: a dispatch p99 above
	// this ceiling (or six windows without dispatch progress while armed)
	// captures a black-box report behind the "blackbox" op. Implies a
	// recorder even without -series.
	sloDispatchP99 time.Duration
	// clk, when non-nil, drives the whole node in virtual time
	// (odp.WithClock). Deterministic-simulation setups share one
	// odp.FakeClock across every node and the fabric; the TCP main path
	// leaves it nil for real time.
	clk odp.Clock
}

// platformOptions translates a nodeConfig into platform construction
// options.
func platformOptions(cfg nodeConfig) ([]odp.Option, error) {
	tracing := odp.WithTracing()
	if cfg.traceEvery > 0 {
		tracing = odp.WithTracing(odp.TraceSampleEvery(uint64(cfg.traceEvery)))
	}
	opts := []odp.Option{tracing}
	if cfg.batch {
		opts = append(opts, odp.WithBatching())
	}
	if cfg.storeDir != "" {
		store, err := odp.NewFileStore(cfg.storeDir)
		if err != nil {
			return nil, err
		}
		opts = append(opts, odp.WithStore(store))
	}
	if cfg.traderCtx != "" {
		opts = append(opts, odp.WithTrader(cfg.traderCtx))
	}
	if cfg.relocator != "" {
		ref, err := odp.DecodeRef(cfg.relocator)
		if err != nil {
			return nil, fmt.Errorf("bad -relocator: %w", err)
		}
		opts = append(opts, odp.WithRelocator(ref))
	}
	if cfg.series > 0 {
		opts = append(opts, odp.WithRecorder(cfg.series))
	}
	if cfg.sloDispatchP99 > 0 {
		p99us := float64(cfg.sloDispatchP99) / float64(time.Microsecond)
		opts = append(opts, odp.WithFlightRecorder(
			odp.CeilingRule("dispatch-p99", "rpc.server.dispatch_p99", p99us),
			odp.StallRule("dispatch-stall", "rpc.server.requests", 6),
		))
	}
	if cfg.clk != nil {
		opts = append(opts, odp.WithClock(cfg.clk))
	}
	return opts, nil
}

// newNode builds the platform for cfg on ep.
func newNode(ep odp.Endpoint, cfg nodeConfig) (*odp.Platform, error) {
	opts, err := platformOptions(cfg)
	if err != nil {
		return nil, err
	}
	return odp.NewPlatform(cfg.name, ep, opts...)
}
