// Command odplint runs the platform's custom static-analysis suite
// (internal/lint) over the module and reports every violated invariant.
//
// Usage:
//
//	odplint [-json] [packages]
//
// Package arguments are accepted for command-line compatibility
// ("go run ./cmd/odplint ./...") but the suite always analyzes the whole
// module: the layering, lockgraph and envaudit passes are only meaningful
// on the full program.
//
// -json emits a machine-readable report: the active diagnostics (with
// witness-chain notes, e.g. a lockgraph cycle's full acquire chain) and
// every //lint:ignore suppression, so CI can render findings and track
// the suppression count. Text mode prints the same information
// human-first.
//
// Exits 1 when any diagnostic is produced, 2 on loading errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"odp/internal/lint"
)

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Column  int      `json:"column"`
	Pass    string   `json:"pass"`
	Message string   `json:"message"`
	Notes   []string `json:"notes,omitempty"`
}

// jsonSuppression is one //lint:ignore hit in -json output.
type jsonSuppression struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Pass    string `json:"pass"`
	Reason  string `json:"reason"`
	Message string `json:"message"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Packages     int               `json:"packages"`
	Diagnostics  []jsonDiagnostic  `json:"diagnostics"`
	Suppressions []jsonSuppression `json:"suppressions"`
}

func main() {
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report")
	flag.Parse()

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "odplint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "odplint:", err)
		os.Exit(2)
	}
	res := lint.RunDetailed(pkgs, lint.DefaultAnalyzers())

	if *asJSON {
		report := jsonReport{
			Packages:     len(pkgs),
			Diagnostics:  []jsonDiagnostic{},
			Suppressions: []jsonSuppression{},
		}
		for _, d := range res.Diagnostics {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Pass: d.Pass, Message: d.Message, Notes: d.Notes,
			})
		}
		for _, s := range res.Suppressed {
			report.Suppressions = append(report.Suppressions, jsonSuppression{
				File: s.Directive.Filename, Line: s.Directive.Line,
				Pass: s.Diagnostic.Pass, Reason: s.Reason, Message: s.Diagnostic.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "odplint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d.Render())
		}
		for _, s := range res.Suppressed {
			fmt.Printf("%s: suppressed [%s] %s (reason: %s)\n",
				s.Directive, s.Diagnostic.Pass, s.Diagnostic.Message, s.Reason)
		}
	}

	// Suppressions never fail the run, but they are always accounted for:
	// the count goes to stderr in both modes so it cannot creep silently.
	if n := len(res.Suppressed); n > 0 {
		fmt.Fprintf(os.Stderr, "odplint: %d finding(s) suppressed by //lint:ignore\n", n)
	}
	if n := len(res.Diagnostics); n > 0 {
		fmt.Fprintf(os.Stderr, "odplint: %d invariant violation(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}
