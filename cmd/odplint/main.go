// Command odplint runs the platform's custom static-analysis suite
// (internal/lint) over the module and reports every violated invariant.
//
// Usage:
//
//	odplint [packages]
//
// Package arguments are accepted for command-line compatibility
// ("go run ./cmd/odplint ./...") but the suite always analyzes the whole
// module: the layering pass is only meaningful on the full import graph.
// Exits 1 when any diagnostic is produced, 2 on loading errors.
package main

import (
	"fmt"
	"os"

	"odp/internal/lint"
)

func main() {
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "odplint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "odplint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.DefaultAnalyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "odplint: %d invariant violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
