package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// nsRegressionLimit is the tolerated ns/op growth between trajectory
// files. Wall-time numbers jitter with machine load, so small movement is
// noise; a quarter slower is a real regression and fails the gate.
const nsRegressionLimit = 0.25

// Sub-microsecond benchmarks (the direct-call and co-located floors of
// the E1 ladder, concurrent announcement enqueue) sit at the scale where
// container scheduling and frequency drift alone move a run ±40%: two
// back-to-back recordings of the untouched 46 ns E1DirectGoCall differed
// by 16%, the 166 ns co-located bypass by 30%. A percentage gate there
// measures the machine, not the code, so below nsNoiseFloorNs the gate
// also requires an absolute movement of at least nsNoiseSlackNs before
// failing — large enough that genuine structural regressions (an added
// lock, a heap escape, a codec round-trip costs well over 100 ns) still
// trip it, small enough that scheduling jitter cannot.
const (
	nsNoiseFloorNs = 1000.0
	nsNoiseSlackNs = 250.0
)

// Alloc tolerances. A genuine regression adds at least one whole
// allocation per op; sync.Pool miss jitter moves the fractional part by
// a few tenths. Between two fractionally-recorded (v2) files half an
// alloc cleanly separates the two. A v1 file stored the truncated
// integer testing prints, which under-reports a hot path whose true
// count sits just under a boundary (small-int boxing is cache-free for
// the first 256 ops, so a 2.00-ε path recorded as 1) — comparing against
// v1 therefore tolerates that lost whole alloc plus jitter. The wide
// tolerance retires with the v1 files themselves.
const (
	allocTolerance   = 0.5
	allocToleranceV1 = 1.3
)

// allocGateFailed reports whether new allocs/op regress past old, with
// the transitional tolerance when the old file is schema v1.
func allocGateFailed(oldSchema string, old, new float64) bool {
	tol := allocTolerance
	if oldSchema == schemaV1 {
		tol = allocToleranceV1
	}
	return new > old+tol
}

// loadBenchFile reads one BENCH_<seq>.json trajectory file.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != schemaV1 && f.Schema != schemaV2 {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

// compare diffs the trajectory files at oldPath and newPath (when
// newPath is empty, the micro-benchmarks are run live instead) and
// enforces the regression gate: any benchmark more than 25% slower in
// ns/op, or allocating more per op, fails the comparison. Benchmarks
// present on only one side are reported but never fail the gate — the
// suite is allowed to grow.
func compare(oldPath, newPath string) error {
	old, err := loadBenchFile(oldPath)
	if err != nil {
		return err
	}
	var cur *benchFile
	var curLabel string
	if newPath != "" {
		curLabel = newPath
		if cur, err = loadBenchFile(newPath); err != nil {
			return err
		}
	} else {
		curLabel = "live run"
		if cur, err = measure(); err != nil {
			return err
		}
		fmt.Println()
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Printf("comparing %s (old) vs %s (new)\n\n", oldPath, curLabel)
	fmt.Printf("%-24s %12s %12s %8s %18s %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "verdict")
	var failures []string
	for _, name := range names {
		o, hasOld := old.Benchmarks[name]
		n, hasNew := cur.Benchmarks[name]
		switch {
		case !hasOld:
			fmt.Printf("%-24s %12s %12.1f %8s %18s %s\n",
				name, "-", n.NsPerOp, "-", fmt.Sprintf("-> %.2f", n.AllocsPerOp), "(new)")
		case !hasNew:
			fmt.Printf("%-24s %12.1f %12s %8s %18s %s\n",
				name, o.NsPerOp, "-", "-", fmt.Sprintf("%.2f ->", o.AllocsPerOp), "(gone)")
		default:
			delta := n.NsPerOp/o.NsPerOp - 1
			verdict := "ok"
			nsFailed := delta > nsRegressionLimit
			if nsFailed && o.NsPerOp < nsNoiseFloorNs && n.NsPerOp-o.NsPerOp < nsNoiseSlackNs {
				nsFailed = false // sub-µs scale: percentage is machine noise
			}
			if nsFailed {
				verdict = fmt.Sprintf("FAIL: ns/op +%.0f%% exceeds +%.0f%% limit",
					delta*100, nsRegressionLimit*100)
				failures = append(failures, name+": "+verdict)
			}
			if allocGateFailed(old.Schema, o.AllocsPerOp, n.AllocsPerOp) {
				v := fmt.Sprintf("FAIL: allocs/op %.2f -> %.2f", o.AllocsPerOp, n.AllocsPerOp)
				failures = append(failures, name+": "+v)
				if verdict == "ok" {
					verdict = v
				} else {
					verdict += "; " + v
				}
			}
			fmt.Printf("%-24s %12.1f %12.1f %+7.1f%% %18s %s\n",
				name, o.NsPerOp, n.NsPerOp, delta*100,
				fmt.Sprintf("%.2f -> %.2f", o.AllocsPerOp, n.AllocsPerOp), verdict)
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		return fmt.Errorf("performance regression gate failed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	fmt.Println("regression gate passed")
	return nil
}
