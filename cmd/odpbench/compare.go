package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// nsRegressionLimit is the tolerated ns/op growth between trajectory
// files. Wall-time numbers jitter with machine load, so small movement is
// noise; a quarter slower is a real regression and fails the gate.
const nsRegressionLimit = 0.25

// loadBenchFile reads one BENCH_<seq>.json trajectory file.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "odp-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

// compare diffs the trajectory files at oldPath and newPath (when
// newPath is empty, the micro-benchmarks are run live instead) and
// enforces the regression gate: any benchmark more than 25% slower in
// ns/op, or allocating more per op, fails the comparison. Benchmarks
// present on only one side are reported but never fail the gate — the
// suite is allowed to grow.
func compare(oldPath, newPath string) error {
	old, err := loadBenchFile(oldPath)
	if err != nil {
		return err
	}
	var cur *benchFile
	var curLabel string
	if newPath != "" {
		curLabel = newPath
		if cur, err = loadBenchFile(newPath); err != nil {
			return err
		}
	} else {
		curLabel = "live run"
		if cur, err = measure(); err != nil {
			return err
		}
		fmt.Println()
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Printf("comparing %s (old) vs %s (new)\n\n", oldPath, curLabel)
	fmt.Printf("%-24s %12s %12s %8s %14s %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "verdict")
	var failures []string
	for _, name := range names {
		o, hasOld := old.Benchmarks[name]
		n, hasNew := cur.Benchmarks[name]
		switch {
		case !hasOld:
			fmt.Printf("%-24s %12s %12.1f %8s %14s %s\n",
				name, "-", n.NsPerOp, "-", fmt.Sprintf("-> %d", n.AllocsPerOp), "(new)")
		case !hasNew:
			fmt.Printf("%-24s %12.1f %12s %8s %14s %s\n",
				name, o.NsPerOp, "-", "-", fmt.Sprintf("%d ->", o.AllocsPerOp), "(gone)")
		default:
			delta := n.NsPerOp/o.NsPerOp - 1
			verdict := "ok"
			if delta > nsRegressionLimit {
				verdict = fmt.Sprintf("FAIL: ns/op +%.0f%% exceeds +%.0f%% limit",
					delta*100, nsRegressionLimit*100)
				failures = append(failures, name+": "+verdict)
			}
			if n.AllocsPerOp > o.AllocsPerOp {
				v := fmt.Sprintf("FAIL: allocs/op %d -> %d", o.AllocsPerOp, n.AllocsPerOp)
				failures = append(failures, name+": "+v)
				if verdict == "ok" {
					verdict = v
				} else {
					verdict += "; " + v
				}
			}
			fmt.Printf("%-24s %12.1f %12.1f %+7.1f%% %14s %s\n",
				name, o.NsPerOp, n.NsPerOp, delta*100,
				fmt.Sprintf("%d -> %d", o.AllocsPerOp, n.AllocsPerOp), verdict)
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		return fmt.Errorf("performance regression gate failed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	fmt.Println("regression gate passed")
	return nil
}
