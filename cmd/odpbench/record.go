package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"odp/internal/bench"
)

// benchRecord is one benchmark's measurement in the trajectory file.
//
// AllocsPerOp is recorded fractionally (total mallocs / N, not the
// truncated integer testing prints): hot paths that draw from
// sync.Pools have a small GC-dependent miss component (~0.2 allocs/op
// on the loopback benchmarks), and truncation turns that jitter into
// spurious whole-alloc flips at integer boundaries. Files recorded
// before this field became fractional hold truncated integers; the
// compare gate widens its tolerance for those (see compare.go).
type benchRecord struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Trajectory-file schema versions: v1 recorded allocs/op as the
// truncated integer, v2 records it fractionally. The compare gate
// accepts both and widens its alloc tolerance across the v1 boundary.
const (
	schemaV1 = "odp-bench/v1"
	schemaV2 = "odp-bench/v2"
)

// benchFile is the BENCH_<seq>.json schema. Each PR appends one file, so
// the sequence of files is the project's performance trajectory.
type benchFile struct {
	Schema     string                 `json:"schema"`
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	CPUs       int                    `json:"cpus"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

// record runs the hot-path micro-benchmarks through testing.Benchmark and
// writes the machine-readable trajectory file.
func record(path string) error {
	out, err := measure()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// measure runs the hot-path micro-benchmarks and returns the results in
// the trajectory-file schema without touching disk.
func measure() (*benchFile, error) {
	out := &benchFile{
		Schema:     schemaV2,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchmarks: make(map[string]benchRecord),
	}
	for _, mb := range bench.MicroBenchmarks() {
		fmt.Printf("recording %-24s ", mb.Name)
		r := testing.Benchmark(mb.Fn)
		if r.N == 0 {
			return nil, fmt.Errorf("benchmark %s did not run (it probably failed)", mb.Name)
		}
		out.Benchmarks[mb.Name] = benchRecord{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
			Iterations:  r.N,
		}
		fmt.Printf("%12.1f ns/op %8d B/op %8.2f allocs/op (n=%d)\n",
			out.Benchmarks[mb.Name].NsPerOp, r.AllocedBytesPerOp(),
			out.Benchmarks[mb.Name].AllocsPerOp, r.N)
	}
	return out, nil
}
