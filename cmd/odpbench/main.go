// Command odpbench runs the evaluation suite: the constructed
// experiments E1–E16 of EXPERIMENTS.md, each keyed to a claim of "The
// Challenge of ODP". It prints one table per experiment.
//
// Usage:
//
//	odpbench                      # run everything at full size
//	odpbench -quick               # reduced iteration counts
//	odpbench -run E1,E6           # selected experiments only
//	odpbench -record BENCH_2.json # hot-path micro-benchmarks → JSON
//	odpbench -compare BENCH_2.json -against BENCH_3.json
//	odpbench -compare BENCH_2.json # old file vs a live run
//
// -record runs the invocation hot-path micro-benchmarks (the same ones
// `go test -bench` sees) and writes a machine-readable BENCH_<seq>.json
// so successive PRs leave a comparable performance trajectory.
//
// -compare diffs two trajectory files (or, without -against, the old
// file against a live run) and enforces the regression gate: any
// benchmark more than 25% slower in ns/op, or allocating more per op,
// exits non-zero. Benchmarks present on only one side are reported as
// (new)/(gone) and never fail the gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"odp/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	recordPath := flag.String("record", "", "write hot-path micro-benchmark results to this JSON file and exit")
	comparePath := flag.String("compare", "", "old BENCH_<seq>.json to compare against; exits non-zero on regression")
	againstPath := flag.String("against", "", "new BENCH_<seq>.json for -compare (default: run the benchmarks live)")
	flag.Parse()
	if *recordPath != "" {
		if err := record(*recordPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *comparePath == "" {
			return
		}
		// -record -compare: gate the file just written.
		*againstPath = *recordPath
	}
	if *comparePath != "" {
		if err := compare(*comparePath, *againstPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := runAll(*quick, *run); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runAll(quick bool, filter string) error {
	selected := make(map[string]bool)
	if filter != "" {
		for _, id := range strings.Split(filter, ",") {
			selected[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, exp := range bench.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		fmt.Printf("=== %s — %s\n", exp.ID, exp.Title)
		fmt.Printf("    claim: %s\n\n", exp.Claim)
		start := time.Now()
		rows, err := exp.Run(quick)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Print(bench.Format(rows))
		fmt.Printf("\n    (%s in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
