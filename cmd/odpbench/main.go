// Command odpbench runs the evaluation suite: the constructed
// experiments E1–E15 of EXPERIMENTS.md, each keyed to a claim of "The
// Challenge of ODP". It prints one table per experiment.
//
// Usage:
//
//	odpbench                      # run everything at full size
//	odpbench -quick               # reduced iteration counts
//	odpbench -run E1,E6           # selected experiments only
//	odpbench -record BENCH_2.json # hot-path micro-benchmarks → JSON
//
// -record runs the invocation hot-path micro-benchmarks (the same ones
// `go test -bench` sees) and writes a machine-readable BENCH_<seq>.json
// so successive PRs leave a comparable performance trajectory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"odp/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	recordPath := flag.String("record", "", "write hot-path micro-benchmark results to this JSON file and exit")
	flag.Parse()
	if *recordPath != "" {
		if err := record(*recordPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := runAll(*quick, *run); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runAll(quick bool, filter string) error {
	selected := make(map[string]bool)
	if filter != "" {
		for _, id := range strings.Split(filter, ",") {
			selected[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, exp := range bench.All() {
		if len(selected) > 0 && !selected[exp.ID] {
			continue
		}
		fmt.Printf("=== %s — %s\n", exp.ID, exp.Title)
		fmt.Printf("    claim: %s\n\n", exp.Claim)
		start := time.Now()
		rows, err := exp.Run(quick)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Print(bench.Format(rows))
		fmt.Printf("\n    (%s in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
