// Command odptrader runs a standalone trading service over TCP: the §6
// "trader" as its own daemon. Nodes advertise into it remotely and
// clients import from it; peers federate by linking traders to each
// other with the link subcommand semantics of the trader interface.
//
// Example:
//
//	odptrader -context org-a -listen 127.0.0.1:7100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"odp"
)

func main() {
	var (
		contextName = flag.String("context", "trader", "federation context name")
		listen      = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		link        = flag.String("link", "", "encoded reference of a peer trader to federate with (name=ref)")
	)
	flag.Parse()
	if err := run(*contextName, *listen, *link); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(contextName, listen, link string) error {
	ep, err := odp.ListenTCP(listen)
	if err != nil {
		return err
	}
	node, err := odp.NewPlatform(contextName, ep, odp.WithTrader(contextName))
	if err != nil {
		return err
	}
	defer node.Close()

	if link != "" {
		var linkName, encoded string
		if n, err := fmt.Sscanf(link, "%s", &encoded); n != 1 || err != nil {
			return fmt.Errorf("bad -link")
		}
		// "name=ref" form; bare ref gets a default name.
		linkName = "peer"
		for i := range link {
			if link[i] == '=' {
				linkName, encoded = link[:i], link[i+1:]
				break
			}
		}
		ref, err := odp.DecodeRef(encoded)
		if err != nil {
			return fmt.Errorf("bad -link reference: %w", err)
		}
		node.Trader.LinkTo(linkName, ref)
		fmt.Printf("federated to %s\n", linkName)
	}

	enc, err := odp.EncodeRef(node.Trader.Ref())
	if err != nil {
		return err
	}
	fmt.Printf("trader %q listening on %s\n", contextName, ep.Addr())
	fmt.Printf("  trader ref: %s\n", enc)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Println("serving; interrupt to stop")
	<-ctx.Done()
	return nil
}
