// Command odpcall performs one interrogation against a TCP-reachable
// interface — the smallest possible ODP client.
//
// Arguments are parsed as int64 when they look numeric, as booleans for
// true/false, and as strings otherwise.
//
// Example:
//
//	odpcall -ref <encoded ref> -op echo -arg hello
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"odp"
)

type argList []odp.Value

func (a *argList) String() string { return fmt.Sprint([]odp.Value(*a)) }

func (a *argList) Set(s string) error {
	switch {
	case s == "true":
		*a = append(*a, true)
	case s == "false":
		*a = append(*a, false)
	default:
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			*a = append(*a, n)
		} else {
			*a = append(*a, s)
		}
	}
	return nil
}

func main() {
	var (
		refStr  = flag.String("ref", "", "encoded interface reference (required)")
		op      = flag.String("op", "", "operation name (required)")
		timeout = flag.Duration("timeout", 5*time.Second, "invocation deadline")
		trace   = flag.Bool("trace", false, "sample the call and print the client-side span tree; the server half lands in the target node's ring (see odptop)")
		args    argList
	)
	flag.Var(&args, "arg", "operation argument (repeatable)")
	flag.Parse()
	if *refStr == "" || *op == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*refStr, *op, *timeout, *trace, args); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(refStr, op string, timeout time.Duration, trace bool, args argList) error {
	ref, err := odp.DecodeRef(refStr)
	if err != nil {
		return err
	}
	ep, err := odp.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	opts := []odp.Option{}
	if trace {
		opts = append(opts, odp.WithTracing(odp.TraceSampleEvery(1)))
	}
	client, err := odp.NewPlatform("odpcall", ep, opts...)
	if err != nil {
		return err
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	out, err := client.Bind(ref).WithQoS(odp.QoS{Timeout: timeout}).Call(ctx, op, args...)
	if err != nil {
		return err
	}
	fmt.Printf("outcome: %s\n", out.Name)
	for i, r := range out.Results {
		fmt.Printf("result[%d]: %v\n", i, r)
	}
	if trace {
		if spans := client.Observer().Snapshot(); len(spans) > 0 {
			fmt.Printf("client spans:\n%s", odp.FormatSpans(spans))
		}
	}
	return nil
}
