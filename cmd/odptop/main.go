// Command odptop polls a node's management interface and renders its
// unified stats snapshot plus recent span trees — "top" for an ODP node.
//
// Point it at the management interface reference (the agent exported as
// "<node>/mgmt"); it issues the "gather" and "spans" interrogations and
// prints one frame per poll:
//
//	odptop -ref <encoded mgmt ref>            # poll every 2s
//	odptop -ref <encoded mgmt ref> -once      # one frame and exit
//
// Counters come out sorted by name so frames diff cleanly; spans render
// as per-trace causal trees (see odp.FormatSpans).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"odp"
)

func main() {
	var (
		refStr   = flag.String("ref", "", "encoded management interface reference (required)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll deadline")
		once     = flag.Bool("once", false, "print one frame and exit")
		noSpans  = flag.Bool("no-spans", false, "omit the span-tree section")
	)
	flag.Parse()
	if *refStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*refStr, *interval, *timeout, *once, !*noSpans); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(refStr string, interval, timeout time.Duration, once, withSpans bool) error {
	ref, err := odp.DecodeRef(refStr)
	if err != nil {
		return err
	}
	ep, err := odp.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	client, err := odp.NewPlatform("odptop", ep)
	if err != nil {
		return err
	}
	defer client.Close()
	proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: timeout})

	for {
		frame, err := poll(proxy, timeout, withSpans)
		if err != nil {
			return err
		}
		fmt.Print(frame)
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func poll(proxy *odp.Proxy, timeout time.Duration, withSpans bool) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	out, err := proxy.Call(ctx, "gather")
	if err != nil {
		return "", fmt.Errorf("gather: %w", err)
	}
	rec, _ := out.Result(0).(odp.Record)

	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", time.Now().Format(time.RFC3339))
	b.WriteString(renderRecord(rec))

	if withSpans {
		out, err = proxy.Call(ctx, "spans")
		if err != nil {
			return "", fmt.Errorf("spans: %w", err)
		}
		list, _ := out.Result(0).(odp.List)
		if spans := odp.SpansFromList(list); len(spans) > 0 {
			b.WriteString("\nrecent traces:\n")
			b.WriteString(odp.FormatSpans(spans))
		}
	}
	b.WriteString("\n")
	return b.String(), nil
}

func renderRecord(rec odp.Record) string {
	keys := make([]string, 0, len(rec))
	width := 0
	for k := range rec {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-*s  %v\n", width, k, rec[k])
	}
	return b.String()
}
