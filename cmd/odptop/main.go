// Command odptop polls a node's management interface and renders its
// unified stats snapshot plus recent span trees — "top" for an ODP node.
//
// Point it at the management interface reference (the agent exported as
// "<node>/mgmt"); it issues the "gather", "series" and "spans"
// interrogations and prints one frame per poll:
//
//	odptop -ref <encoded mgmt ref>            # poll every 2s
//	odptop -ref <encoded mgmt ref> -once      # one frame and exit
//
// Counters come out sorted by name so frames diff cleanly; latency
// histograms render as sparkline columns with derived quantiles; rates
// come from the node's own recorder (the "series" op), so odptop shows
// invocations per second without having to keep state between polls;
// spans render as per-trace causal trees (see odp.FormatSpans).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"odp"
)

func main() {
	var (
		refStr   = flag.String("ref", "", "encoded management interface reference (required)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll deadline")
		once     = flag.Bool("once", false, "print one frame and exit")
		noSpans  = flag.Bool("no-spans", false, "omit the span-tree section")
		noSeries = flag.Bool("no-series", false, "omit the rates section")
	)
	flag.Parse()
	if *refStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*refStr, *interval, *timeout, *once, !*noSpans, !*noSeries); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(refStr string, interval, timeout time.Duration, once, withSpans, withSeries bool) error {
	ref, err := odp.DecodeRef(refStr)
	if err != nil {
		return err
	}
	ep, err := odp.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	client, err := odp.NewPlatform("odptop", ep)
	if err != nil {
		return err
	}
	defer client.Close()
	proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: timeout})

	for {
		frame, err := poll(proxy, timeout, withSpans, withSeries)
		if err != nil {
			return err
		}
		fmt.Print(frame)
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func poll(proxy *odp.Proxy, timeout time.Duration, withSpans, withSeries bool) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	out, err := proxy.Call(ctx, "gather")
	if err != nil {
		return "", fmt.Errorf("gather: %w", err)
	}
	rec, _ := out.Result(0).(odp.Record)

	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", time.Now().Format(time.RFC3339))
	b.WriteString(renderRecord(rec))
	b.WriteString(renderLatency(rec))

	if withSeries {
		// A node predating the recorder answers "series" with an error;
		// older frames just lack the rates section.
		if out, err = proxy.Call(ctx, "series"); err == nil {
			series, _ := out.Result(0).(odp.Record)
			b.WriteString(renderSeries(series))
		}
	}
	if withSpans {
		out, err = proxy.Call(ctx, "spans")
		if err != nil {
			return "", fmt.Errorf("spans: %w", err)
		}
		list, _ := out.Result(0).(odp.List)
		if spans := odp.SpansFromList(list); len(spans) > 0 {
			b.WriteString("\nrecent traces:\n")
			b.WriteString(odp.FormatSpans(spans))
		}
	}
	b.WriteString("\n")
	return b.String(), nil
}

// renderRecord prints every key sorted and aligned. Histogram bucket
// keys ("<base>_hist.<i>") are elided — renderLatency shows those
// distributions as sparkline columns instead of 32 counter lines each.
func renderRecord(rec odp.Record) string {
	keys := make([]string, 0, len(rec))
	width := 0
	for k := range rec {
		if strings.Contains(k, "_hist.") {
			continue
		}
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-*s  %v\n", width, k, rec[k])
	}
	return b.String()
}

// renderLatency reassembles the folded latency histograms and prints one
// sparkline row per channel stage: observation count, derived quantiles
// and the bucket profile over the occupied log2-µs range. Output is a
// pure function of the record, so identical snapshots render
// byte-identically.
func renderLatency(rec odp.Record) string {
	hists := odp.HistogramKeys(rec)
	if len(hists) == 0 {
		return ""
	}
	bases := make([]string, 0, len(hists))
	width := 0
	for base := range hists {
		bases = append(bases, base)
		if len(base) > width {
			width = len(base)
		}
	}
	sort.Strings(bases)
	var b strings.Builder
	b.WriteString("\nlatency:\n")
	for _, base := range bases {
		s := hists[base]
		fmt.Fprintf(&b, "%-*s  n=%d p50=%.0fµs p90=%.0fµs p99=%.0fµs  %s\n",
			width, base, s.Count(),
			s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99),
			sparkline(s))
	}
	return b.String()
}

// sparkline renders the occupied bucket range as block characters scaled
// to the fullest bucket, annotated with the range's µs bounds.
func sparkline(s odp.HistogramSnapshot) string {
	lo, hi := -1, -1
	var max uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
		if n > max {
			max = n
		}
	}
	if lo < 0 {
		return "-"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	b.WriteByte('|')
	for i := lo; i <= hi; i++ {
		n := s.Buckets[i]
		if n == 0 {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(levels[int(uint64(len(levels)-1)*n/max)])
	}
	fmt.Fprintf(&b, "| [%s..%s)", bucketFloor(lo), bucketFloor(hi+1))
	return b.String()
}

// bucketFloor formats bucket i's lower bound (2^(i-1) µs; bucket 0
// starts at 0) in a humane unit.
func bucketFloor(i int) string {
	if i == 0 {
		return "0"
	}
	us := uint64(1) << (i - 1)
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%ds", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%dms", us/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// renderSeries prints the recorder-derived rates sorted, one decimal
// place, skipping zero rates so the section names what is moving.
func renderSeries(series odp.Record) string {
	keys := make([]string, 0, len(series))
	width := 0
	for k, v := range series {
		if !strings.HasSuffix(k, "_per_sec") {
			continue
		}
		if rate, ok := v.(float64); !ok || rate == 0 {
			continue
		}
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var b strings.Builder
	samples, _ := series["series.samples"].(uint64)
	windowUS, _ := series["series.window_us"].(uint64)
	fmt.Fprintf(&b, "\nrates (%d samples, %s window):\n",
		samples, time.Duration(windowUS)*time.Microsecond)
	for _, k := range keys {
		rate, _ := series[k].(float64)
		fmt.Fprintf(&b, "%-*s  %.1f\n", width, k, rate)
	}
	return b.String()
}
