package main

import (
	"strings"
	"testing"

	"odp"
)

// sampleGather builds a snapshot with counters, a folded latency
// histogram and bucket keys, the way a node's "gather" op serves it.
func sampleGather() odp.Record {
	return odp.Record{
		"rpc.client.sent":                 uint64(42),
		"rpc.server.dispatches":           uint64(40),
		"domain":                          "edge",
		"rpc.server.dispatch_count":       uint64(7),
		"rpc.server.dispatch_p50":         3.5,
		"rpc.server.dispatch_hist.1":      uint64(2),
		"rpc.server.dispatch_hist.3":      uint64(4),
		"rpc.server.dispatch_hist.5":      uint64(1),
		"transport.coalescer.flush_count": uint64(0),
	}
}

func TestRenderRecordSortedAndHistElided(t *testing.T) {
	out := renderRecord(sampleGather())
	if strings.Contains(out, "_hist.") {
		t.Fatalf("bucket keys should be elided from the counter listing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var prev string
	for _, l := range lines {
		key := strings.Fields(l)[0]
		if key < prev {
			t.Fatalf("keys out of order: %q after %q", key, prev)
		}
		prev = key
	}
	if !strings.Contains(out, "rpc.client.sent") {
		t.Fatalf("missing counter line:\n%s", out)
	}
}

func TestRenderLatencySparkline(t *testing.T) {
	out := renderLatency(sampleGather())
	if !strings.Contains(out, "rpc.server.dispatch") {
		t.Fatalf("missing histogram row:\n%s", out)
	}
	if !strings.Contains(out, "n=7") {
		t.Fatalf("missing observation count:\n%s", out)
	}
	// Buckets 1..5 occupied with a gap at 2 and 4: the sparkline spans
	// exactly that range, zero buckets as underscores, fullest as █.
	if !strings.Contains(out, "|▄_█_▂|") {
		t.Fatalf("unexpected sparkline:\n%s", out)
	}
	if !strings.Contains(out, "[1µs..32µs)") {
		t.Fatalf("missing range annotation:\n%s", out)
	}
}

func TestRenderSeriesRates(t *testing.T) {
	series := odp.Record{
		"series.samples":              uint64(5),
		"series.window_us":            uint64(1000000),
		"rpc.client.sent_per_sec":     12.5,
		"gc.collected_per_sec":        0.0, // zero rates are skipped
		"rpc.server.dispatch_per_sec": 11.0,
	}
	out := renderSeries(series)
	if !strings.Contains(out, "rates (5 samples, 1s window):") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "rpc.client.sent_per_sec") || !strings.Contains(out, "12.5") {
		t.Fatalf("missing rate line:\n%s", out)
	}
	if strings.Contains(out, "gc.collected_per_sec") {
		t.Fatalf("zero rate should be skipped:\n%s", out)
	}
	if strings.Index(out, "rpc.client.sent_per_sec") > strings.Index(out, "rpc.server.dispatch_per_sec") {
		t.Fatalf("rates out of order:\n%s", out)
	}
}

// TestRenderersDeterministic re-renders the same records and demands
// byte-identical frames: odptop output diffs cleanly between polls only
// if rendering is a pure function of the snapshot.
func TestRenderersDeterministic(t *testing.T) {
	rec, series := sampleGather(), odp.Record{
		"series.samples":          uint64(3),
		"series.window_us":        uint64(500000),
		"rpc.client.sent_per_sec": 4.0,
	}
	for i := 0; i < 10; i++ {
		if a, b := renderRecord(rec), renderRecord(rec); a != b {
			t.Fatalf("renderRecord not deterministic:\n%s\nvs\n%s", a, b)
		}
		if a, b := renderLatency(rec), renderLatency(rec); a != b {
			t.Fatalf("renderLatency not deterministic:\n%s\nvs\n%s", a, b)
		}
		if a, b := renderSeries(series), renderSeries(series); a != b {
			t.Fatalf("renderSeries not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
}
