package odp_test

// Allocation gate for the packed-codec hot path: once two batching
// platforms have negotiated ansa-packed/1, an E1 remote loopback call
// must stay under 15 allocations — the budget that keeps the sub-10 µs
// latency target reachable. The count is measured with AllocsPerRun so
// a regression fails deterministically instead of showing up as bench
// noise.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"odp"
)

// packedE1AllocBudget is the ceiling for allocations per packed E1
// call. The path currently costs 13; the two-alloc headroom absorbs
// runtime jitter without letting a real leak (≥1 alloc) through.
const packedE1AllocBudget = 15

func TestPackedE1AllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are skewed under -race: sync.Pool drops puts by design")
	}
	f := odp.NewFabric(odp.WithSeed(1))
	defer f.Close()
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep, odp.WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ref, err := server.Publish("cell", odp.Object{Servant: &countingServant{}})
	if err != nil {
		t.Fatal(err)
	}
	proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	call := func() {
		if _, err := proxy.Call(ctx, "add"); err != nil {
			t.Fatal(err)
		}
	}

	// Warm until the HELLO exchange lands and calls upgrade to packed;
	// the probe's delivery can trail the request/reply ping-pong, so
	// poll the negotiated state instead of assuming a fixed count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		call()
		if n, _ := client.Gather()["rpc.client.packed_upgrades"].(uint64); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("packed codec not negotiated within warm-up deadline")
		}
		runtime.Gosched()
	}
	for i := 0; i < 100; i++ { // settle pools, shards, routes
		call()
	}

	before, _ := client.Gather()["rpc.client.packed_upgrades"].(uint64)
	allocs := testing.AllocsPerRun(200, call)
	after, _ := client.Gather()["rpc.client.packed_upgrades"].(uint64)
	if after <= before {
		t.Fatalf("measured calls were not packed: upgrades %d -> %d", before, after)
	}
	if allocs >= packedE1AllocBudget {
		t.Fatalf("packed E1 loopback allocates %.1f/op, budget < %d", allocs, packedE1AllocBudget)
	}
	t.Logf("packed E1 loopback: %.1f allocs/op (budget < %d)", allocs, packedE1AllocBudget)
}
