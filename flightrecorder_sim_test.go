package odp_test

// Flight-recorder acceptance: under the simulation harness a seeded
// scenario that breaches its SLO rules produces byte-identical black-box
// reports on every replay — the anomaly pipeline (histogram → recorder →
// rule → report) is as deterministic as the trace pipeline, so a
// captured report can be asserted on like a trace hash.

import (
	"context"
	"strings"
	"testing"
	"time"

	"odp"
	"odp/internal/sim"
)

// slowServant parks on the virtual clock for a fixed latency per
// dispatch, so the server's dispatch histogram fills with deterministic
// 5ms observations.
type slowServant struct {
	clk odp.Clock
}

func (s *slowServant) Dispatch(_ context.Context, op string, _ []odp.Value) (string, []odp.Value, error) {
	s.clk.Sleep(5 * time.Millisecond)
	return "ok", nil, nil
}

// runFlightSim drives the breach scenario once and returns the rendered
// black-box reports fetched through the management "blackbox" op.
func runFlightSim(t *testing.T, seed int64) string {
	t.Helper()
	s := sim.New(seed,
		sim.WithStrictSettle(),
		sim.WithDefaultLink(odp.LinkProfile{Latency: 500 * time.Microsecond}),
	)
	defer s.Close()

	// The sampling interval is deliberately off the server janitor's 1s
	// tick: the sim orders distinct virtual deadlines (RunFor settles
	// between them) but coincident ones wake concurrent goroutines whose
	// interleaving virtual time cannot order, so a byte-stable scenario
	// keeps its periodic timers disjoint.
	server := simPlatform(t, s, "server",
		odp.WithTracing(odp.TraceSampleEvery(1)),
		odp.WithRecorder(900*time.Millisecond),
		odp.WithFlightRecorder(
			odp.CeilingRule("dispatch-p99", "rpc.server.dispatch_p99", 1000), // 1ms ceiling
			odp.StallRule("no-progress", "rpc.server.requests", 3),
		))
	client := simPlatform(t, s, "client", odp.WithTracing(odp.TraceSampleEvery(1)))

	ref, err := server.Publish("slow", odp.Object{Servant: &slowServant{clk: s.Clock}})
	if err != nil {
		t.Fatal(err)
	}
	qos := odp.QoS{Timeout: 30 * time.Second, Retransmit: 50 * time.Millisecond}
	for i := 0; i < 3; i++ {
		if err := driveCall(t, s, time.Minute, func() error {
			_, err := client.Bind(ref).WithQoS(qos).Call(context.Background(), "work")
			return err
		}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	// Let the recorder sample: the first window sees a ~5ms dispatch p99
	// (ceiling breach), then the requests counter sits still for three
	// windows (stall breach).
	s.RunFor(6 * time.Second)

	// Freeze sampling so fetching the evidence does not grow the rings.
	server.Observer().SetSampleEvery(0)
	client.Observer().SetSampleEvery(0)

	var texts []string
	if err := driveCall(t, s, time.Minute, func() error {
		out, err := client.Bind(server.Agent.Ref()).WithQoS(qos).Call(context.Background(), "blackbox")
		if err != nil {
			return err
		}
		list, _ := out.Result(0).(odp.List)
		for _, v := range list {
			rec, _ := v.(odp.Record)
			text, _ := rec["text"].(string)
			texts = append(texts, text)
		}
		return nil
	}); err != nil {
		t.Fatalf("blackbox via management interface: %v", err)
	}
	return strings.Join(texts, "---\n")
}

// TestSimFlightRecorderBreachDeterministic is the anomaly-pipeline
// determinism pin: same seed, same black-box bytes — and because runs
// are seed-anchored, `go test -count=2` reproduces them again.
func TestSimFlightRecorderBreachDeterministic(t *testing.T) {
	r1, r2 := runFlightSim(t, 43), runFlightSim(t, 43)
	if r1 != r2 {
		t.Fatalf("black-box reports diverged for seed 43:\n--- run 1\n%s\n--- run 2\n%s", r1, r2)
	}
	if !strings.Contains(r1, "rule=dispatch-p99") {
		t.Fatalf("no ceiling breach captured:\n%s", r1)
	}
	if !strings.Contains(r1, "rule=no-progress") {
		t.Fatalf("no stall breach captured:\n%s", r1)
	}
	if !strings.Contains(r1, "spans:") {
		t.Fatalf("report carries no spans:\n%s", r1)
	}
	if !strings.Contains(r1, "delta rpc.server.requests") {
		t.Fatalf("ceiling report misses the window's request delta:\n%s", r1)
	}
	t.Logf("seed=43 black box (%d bytes):\n%s", len(r1), r1)
}
