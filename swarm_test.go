package odp_test

// Federation-swarm scenarios: whole-platform populations at swarm scale
// (up to 1,000 capsules across 10 administrative domains) running under
// the deterministic simulation harness on a sparse subnet/gateway
// topology. Each scenario is hash-pinned: `go test -count=2` replays it
// in the same process and the second run must reproduce the first run's
// event-trace hash byte for byte.
//
// The scenarios deliberately exercise the three federation-sensitive
// subsystems over gateway links: trader link-following imports, replica
// group membership churn, and distributed garbage collection across an
// inter-domain reference chain — all driven by FaultPlan subnet faults.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"odp"
	"odp/internal/gc"
	"odp/internal/group"
	"odp/internal/sim"
)

// swarmHashes records each swarm test's first-run trace hash and dump;
// a repeat run of the same test in the same process (`-count=2`) must
// match, and a mismatch reports the first divergent canonical line.
var swarmHashes = map[string]string{}
var swarmDumps = map[string]string{}

func pinSwarmHash(t *testing.T, s *sim.Sim) {
	t.Helper()
	h := s.Trace.Hash()
	if prev, ok := swarmHashes[t.Name()]; ok {
		if prev != h {
			a := strings.Split(swarmDumps[t.Name()], "\n")
			b := strings.Split(s.Trace.Dump(), "\n")
			for i := 0; i < len(a) || i < len(b); i++ {
				var la, lb string
				if i < len(a) {
					la = a[i]
				}
				if i < len(b) {
					lb = b[i]
				}
				if la != lb {
					ctx := func(lines []string) string {
						lo := i - 3
						if lo < 0 {
							lo = 0
						}
						hi := i + 4
						if hi > len(lines) {
							hi = len(lines)
						}
						return strings.Join(lines[lo:hi], "\n  ")
					}
					t.Fatalf("event trace diverged across runs at canonical line %d:\n first %q\n this  %q\nfirst-run context:\n  %s\nthis-run context:\n  %s\n(hashes %s vs %s)",
						i+1, la, lb, ctx(a), ctx(b), prev, h)
				}
			}
			t.Fatalf("event trace diverged across runs:\n first %s\n this  %s", prev, h)
		}
	} else {
		swarmHashes[t.Name()] = h
		swarmDumps[t.Name()] = s.Trace.Dump()
	}
	t.Logf("trace hash %s (%d events)", h, s.Trace.Len())
}

// swarmPlatform creates one platform on the simulation fabric without a
// per-platform Cleanup: a thousand individually-drained Closes would pay
// the settle loop a thousand times, so swarm scenarios tear everything
// down in a single bulk Drain instead.
func swarmPlatform(t *testing.T, s *sim.Sim, addr string, opts ...odp.Option) *odp.Platform {
	t.Helper()
	ep, err := s.Fabric.Endpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	opts = append(opts, odp.WithClock(s.Clock))
	p, err := odp.NewPlatform(addr, ep, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// closeAll closes every platform inside one Drain (teardown parks on
// virtual timers, so the clock must keep advancing until all are down).
func closeAll(s *sim.Sim, platforms []*odp.Platform) {
	s.Drain(func() {
		for i := len(platforms) - 1; i >= 0; i-- {
			_ = platforms[i].Close()
		}
	})
}

// runTo advances virtual time to the absolute instant `at` (measured
// from the epoch), failing the test if the scenario has already run past
// it — the phase-budget assertions that keep fault-plan instants honest.
func runTo(t *testing.T, s *sim.Sim, at time.Duration) {
	t.Helper()
	if e := s.Elapsed(); e >= at {
		t.Fatalf("scenario at +%v already past checkpoint +%v", e, at)
	}
	s.RunFor(at - s.Elapsed())
}

// offGridSkew keeps fault instants off the traffic grid: every link
// latency, retransmit period and timeout in these scenarios is a
// multiple of 10µs, so a 13µs skew guarantees no fault shares an exact
// instant with a send or delivery (see the sim.FaultPlan determinism
// note).
const offGridSkew = 13 * time.Microsecond

type workServant struct{}

func (workServant) Dispatch(context.Context, string, []odp.Value) (string, []odp.Value, error) {
	return "ok", nil, nil
}

func workType() odp.Type {
	return odp.Type{
		Name: "swarm.Work",
		Ops: map[string]odp.Operation{
			"work": {Outcomes: map[string][]odp.Desc{"ok": {}}},
		},
	}
}

// TestSimSwarmTraderFederation is the 1,000-capsule federation scenario:
// 10 domains × 100 capsules on a sparse chain topology where only
// adjacent domains share a gateway link. Capsule 0 of each domain hosts
// the domain trader; every other capsule advertises a service with it.
// Traders federate along the chain, so an import from domain 0 reaches
// domain 9 only by following 9 links — and a FaultPlan partition of the
// d08|d09 gateway must make exactly that query come back empty (skipped
// peer, not a failed import) while everything nearer stays reachable.
func TestSimSwarmTraderFederation(t *testing.T) {
	const domains = 10
	perDomain := 100
	if raceEnabled {
		// The race detector multiplies every settle poll and packet copy;
		// a tenth of the population exercises the same paths.
		perDomain = 10
	}
	const (
		partitionAt = 500 * time.Millisecond
		healAt      = 650 * time.Millisecond
	)

	s := sim.New(29, sim.WithStrictSettle())
	defer s.Close()
	n := sim.Swarm{
		Domains:           domains,
		CapsulesPerDomain: perDomain,
		Intra:             odp.LinkProfile{Latency: 50 * time.Microsecond},
		Gateway:           odp.LinkProfile{Latency: 200 * time.Microsecond},
	}.Build(s)

	platforms := make([]*odp.Platform, 0, domains*perDomain)
	traders := make([]*odp.Platform, domains)
	for d := 0; d < domains; d++ {
		dom := n.Domain(d)
		for c := 0; c < perDomain; c++ {
			opts := []odp.Option{odp.WithDomain(dom)}
			if c == 0 {
				opts = append(opts,
					odp.WithTrader(dom),
					// Tight per-hop federation QoS: a partitioned far-end
					// domain costs 40ms × remaining hops of virtual time,
					// not the 2s default invocation timeout per level.
					odp.WithTraderFederationQoS(odp.QoS{
						Timeout:    40 * time.Millisecond,
						Retransmit: 7 * time.Millisecond,
					}))
			}
			p := swarmPlatform(t, s, n.Addr(d, c), opts...)
			platforms = append(platforms, p)
			if c == 0 {
				traders[d] = p
			}
		}
	}
	defer closeAll(s, platforms)

	for d := 0; d+1 < domains; d++ {
		traders[d].Trader.LinkTo("east", traders[d+1].Trader.Ref())
	}

	s.Install(sim.NewFaultPlan().
		At(partitionAt+offGridSkew).PartitionSubnets(n.Domain(domains-2), n.Domain(domains-1)).
		At(healAt+offGridSkew).HealSubnets(n.Domain(domains-2), n.Domain(domains-1)))

	// Advertise phase: every worker capsule publishes its servant and
	// registers the offer with its domain trader over the wire —
	// 990 remote advertisements, serialized for replay stability.
	ctx := context.Background()
	for d := 0; d < domains; d++ {
		dom := n.Domain(d)
		tref := traders[d].Trader.Ref()
		for c := 1; c < perDomain; c++ {
			w := platforms[d*perDomain+c]
			ref, err := w.Publish("svc", odp.Object{Servant: workServant{}, Type: workType()})
			if err != nil {
				t.Fatal(err)
			}
			tc := odp.NewTraderClient(w, tref)
			if err := driveCall(t, s, time.Minute, func() error {
				_, aerr := tc.Advertise(ctx, workType(), ref, map[string]odp.Value{"dom": dom})
				return aerr
			}); err != nil {
				t.Fatalf("advertise %s: %v", n.Addr(d, c), err)
			}
		}
	}

	importer := odp.NewTraderClient(platforms[1], traders[0].Trader.Ref())
	farDom := n.Domain(domains - 1)
	farSpec := odp.ImportSpec{
		Requirement: workType(),
		Constraints: []odp.Constraint{{Key: "dom", Op: odp.OpEq, Value: farDom}},
		MaxHops:     domains - 1,
		MaxMatches:  4,
	}
	var far []odp.Offer
	importFar := func() error {
		var err error
		far, err = importer.Import(ctx, farSpec)
		return err
	}

	// Query 1 (healthy chain): the far domain's offers come back with the
	// full 9-link context trail, so context-relative naming keeps them
	// resolvable from domain 0.
	if err := driveCall(t, s, time.Minute, importFar); err != nil {
		t.Fatal(err)
	}
	if len(far) != 4 {
		t.Fatalf("far import returned %d offers, want 4", len(far))
	}
	wantPrefix := strings.Repeat("east!", domains-1) + farDom + "/offer-"
	for _, o := range far {
		if !strings.HasPrefix(o.ID, wantPrefix) {
			t.Fatalf("far offer %q lacks the %d-link context trail %q…", o.ID, domains-1, wantPrefix)
		}
	}

	// A one-hop unconstrained import sees exactly the local and adjacent
	// domains' offers — the sparse topology means nothing further leaks in.
	var broad []odp.Offer
	if err := driveCall(t, s, time.Minute, func() error {
		var err error
		broad, err = importer.Import(ctx, odp.ImportSpec{Requirement: workType(), MaxHops: 1})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if want := 2 * (perDomain - 1); len(broad) != want {
		t.Fatalf("one-hop import returned %d offers, want %d", len(broad), want)
	}

	// Query 2 (partitioned gateway): the d08→d09 hop times out and is
	// skipped; the import itself must succeed with zero matches.
	runTo(t, s, partitionAt+10*time.Millisecond)
	if err := driveCall(t, s, time.Minute, importFar); err != nil {
		t.Fatalf("import across partition failed hard, want skipped peer: %v", err)
	}
	if len(far) != 0 {
		t.Fatalf("partitioned far import returned %d offers, want 0", len(far))
	}
	if e := s.Elapsed(); e >= healAt {
		t.Fatalf("partitioned import ran to +%v, past the heal instant +%v", e, healAt)
	}

	// Query 3 (healed): the chain answers again.
	runTo(t, s, healAt+10*time.Millisecond)
	if err := driveCall(t, s, time.Minute, importFar); err != nil {
		t.Fatal(err)
	}
	if len(far) != 4 {
		t.Fatalf("far import after heal returned %d offers, want 4", len(far))
	}

	st := s.Fabric.Stats()
	if st.Cut == 0 {
		t.Fatal("subnet partition cut no packets")
	}

	// Per-domain rollups: one Gather sweep over all 1,000 capsules.
	rec := odp.GatherDomains(platforms...)
	for d := 0; d < domains; d++ {
		dom := n.Domain(d)
		if got := rec["domain."+dom+".platforms"]; got != uint64(perDomain) {
			t.Fatalf("domain.%s.platforms = %v, want %d", dom, got, perDomain)
		}
		if got := rec["domain."+dom+".trader.offers"]; got != uint64(perDomain-1) {
			t.Fatalf("domain.%s.trader.offers = %v, want %d", dom, got, perDomain-1)
		}
	}
	// The home trader served all four imports; the far trader saw only
	// the two that crossed a healthy chain.
	if got := rec["domain."+n.Domain(0)+".trader.imports"]; got != uint64(4) {
		t.Fatalf("domain.%s.trader.imports = %v, want 4", n.Domain(0), got)
	}
	if got := rec["domain."+farDom+".trader.imports"]; got != uint64(2) {
		t.Fatalf("domain.%s.trader.imports = %v, want 2", farDom, got)
	}

	s.Mark("swarm trader done capsules=%d offers=%d cut=%d delivered=%d",
		domains*perDomain, (perDomain-1)*domains, st.Cut, st.Delivered)
	pinSwarmHash(t, s)
}

// swarmCounter is the replicated servant for the group-churn scenario.
type swarmCounter struct {
	mu sync.Mutex
	n  int64
}

func (c *swarmCounter) Dispatch(_ context.Context, op string, _ []odp.Value) (string, []odp.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "add":
		c.n++
		return "ok", []odp.Value{c.n}, nil
	case "total":
		return "ok", []odp.Value{c.n}, nil
	}
	return "", nil, fmt.Errorf("swarmCounter: unknown op %q", op)
}

// TestSimSwarmGroupChurn churns a 100-member replica group spread over
// 10 gateway-meshed domains: a FaultPlan isolates one whole subnet, the
// sequencer expels its 10 silent members, the subnet heals, and a fresh
// member joins the shrunken view — with replicated state surviving the
// whole episode.
func TestSimSwarmGroupChurn(t *testing.T) {
	const domains = 10
	perDomain := 10
	if raceEnabled {
		perDomain = 3
	}
	members := domains * perDomain
	const (
		isolateAt = 600 * time.Millisecond
		expelBy   = 1400 * time.Millisecond
		rejoinAt  = 1600 * time.Millisecond
	)

	s := sim.New(37, sim.WithStrictSettle())
	defer s.Close()
	n := sim.Swarm{
		Domains:           domains,
		CapsulesPerDomain: perDomain,
		Intra:             odp.LinkProfile{Latency: 50 * time.Microsecond},
		Gateway:           odp.LinkProfile{Latency: 200 * time.Microsecond},
	}.Build(s)
	// A replica group needs all-pairs reachability; the chain only links
	// neighbours, so mesh the remaining domain pairs explicitly.
	for a := 0; a < domains; a++ {
		for b := a + 2; b < domains; b++ {
			s.Fabric.LinkSubnets(n.Domain(a), n.Domain(b), odp.LinkProfile{Latency: 200 * time.Microsecond})
		}
	}

	platforms := make([]*odp.Platform, 0, members+2)
	memberPlatforms := make([]*odp.Platform, 0, members)
	for d := 0; d < domains; d++ {
		for c := 0; c < perDomain; c++ {
			p := swarmPlatform(t, s, n.Addr(d, c), odp.WithDomain(n.Domain(d)))
			platforms = append(platforms, p)
			memberPlatforms = append(memberPlatforms, p)
		}
	}
	clientAddr := n.Domain(0) + "/c900"
	s.Fabric.JoinSubnet(clientAddr, n.Domain(0))
	client := swarmPlatform(t, s, clientAddr, odp.WithDomain(n.Domain(0)))
	platforms = append(platforms, client)
	defer closeAll(s, platforms)

	spec := odp.ReplicaSpec{
		GroupID: "swarm",
		Mode:    odp.ModeActive,
		// Heartbeats fan out concurrently, so a detection pass costs one
		// call timeout (2×interval) even with a whole domain dark.
		// FailureTimeout stays several passes wide so live backups —
		// silent only between passes — never cross their own promotion
		// thresholds.
		HeartbeatInterval: 20 * time.Millisecond,
		FailureTimeout:    400 * time.Millisecond,
	}
	var rep *odp.Replicated
	if err := driveCall(t, s, time.Minute, func() error {
		var err error
		rep, err = odp.PublishReplicated(memberPlatforms, spec, func() odp.Servant { return &swarmCounter{} })
		return err
	}); err != nil {
		t.Fatalf("join phase: %v", err)
	}
	stopRep := rep
	defer func() { s.Drain(stopRep.Stop) }()

	ctx := context.Background()
	proxy := client.Bind(rep.Ref())
	add := func() {
		t.Helper()
		if err := driveCall(t, s, time.Minute, func() error {
			out, err := proxy.Call(ctx, "add")
			if err != nil {
				return err
			}
			if !out.Is("ok") {
				return fmt.Errorf("add outcome %+v", out)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	add()
	add()
	add()
	if e := s.Elapsed(); e >= isolateAt {
		t.Fatalf("join+invoke phase ran to +%v, past the isolation instant +%v", e, isolateAt)
	}

	s.Install(sim.NewFaultPlan().
		At(isolateAt+offGridSkew).IsolateSubnet(n.Domain(domains-1)).
		At(rejoinAt+offGridSkew).RejoinSubnet(n.Domain(domains-1)))

	// Run through the churn window: the sequencer expels all perDomain
	// members of the dark domain, one successor view per expulsion.
	runTo(t, s, expelBy)
	if _, ids := rep.Members[0].View(); len(ids) != members-perDomain {
		t.Fatalf("post-churn view has %d members, want %d", len(ids), members-perDomain)
	}
	if got := rep.Members[1].Promotions(); got != 0 {
		t.Fatalf("live backup promoted itself %d times during the detection pass", got)
	}
	// The expelled members never heard the successor views.
	if _, ids := rep.Members[members-1].View(); len(ids) != members {
		t.Fatalf("isolated member's stale view has %d members, want %d", len(ids), members)
	}

	// Heal, then a fresh member from the healed domain joins the
	// shrunken group and replays the logged invocations.
	runTo(t, s, rejoinAt+20*time.Millisecond)
	joinerAddr := n.Domain(domains-1) + "/c900"
	s.Fabric.JoinSubnet(joinerAddr, n.Domain(domains-1))
	jp := swarmPlatform(t, s, joinerAddr, odp.WithDomain(n.Domain(domains-1)))
	platforms = append(platforms, jp)
	jm, err := group.NewMember(jp.Capsule, &swarmCounter{}, group.Config{
		GroupID:           "swarm",
		Mode:              group.ModeActive,
		HeartbeatInterval: spec.HeartbeatInterval,
		FailureTimeout:    spec.FailureTimeout,
		Clock:             s.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Drain(jm.Stop) }()
	if err := driveCall(t, s, time.Minute, func() error {
		return jm.Join(ctx, rep.Members[0].GroupRef())
	}); err != nil {
		t.Fatalf("post-heal join: %v", err)
	}
	jm.Start()
	// Mirror PublishReplicated's stats wiring so the joiner's execution
	// counter lands in its domain rollup too.
	jm2 := jm
	jp.AddStatsSource(func(rec odp.Record) {
		rec["group.swarm.executed"] = jm2.Executed()
		rec["group.swarm.promotions"] = jm2.Promotions()
	})

	if _, ids := rep.Members[0].View(); len(ids) != members-perDomain+1 {
		t.Fatalf("post-join view has %d members, want %d", len(ids), members-perDomain+1)
	}
	if got := jm.Executed(); got != 3 {
		t.Fatalf("joiner replayed %d invocations, want 3", got)
	}

	add()
	add()
	var total int64
	if err := driveCall(t, s, time.Minute, func() error {
		out, err := proxy.Call(ctx, "total")
		if err != nil {
			return err
		}
		total, err = out.Int(0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Fatalf("replicated total = %d across churn, want 5", total)
	}

	// Per-domain rollups: live domains executed all six ordered
	// invocations on every member; the churned domain's count is its
	// expelled members' three plus the joiner's six.
	rec := odp.GatherDomains(platforms...)
	liveDom := n.Domain(0)
	if got := rec["domain."+liveDom+".group.swarm.executed"]; got != uint64(perDomain*6) {
		t.Fatalf("domain.%s.group.swarm.executed = %v, want %d", liveDom, got, perDomain*6)
	}
	churnDom := n.Domain(domains - 1)
	if got := rec["domain."+churnDom+".group.swarm.executed"]; got != uint64(perDomain*3+6) {
		t.Fatalf("domain.%s.group.swarm.executed = %v, want %d", churnDom, got, perDomain*3+6)
	}

	st := s.Fabric.Stats()
	if st.Cut == 0 {
		t.Fatal("subnet isolation cut no packets")
	}
	s.Mark("swarm group churn members=%d view=%d total=%d cut=%d",
		members, members-perDomain+1, total, st.Cut)
	pinSwarmHash(t, s)
}

// TestSimSwarmGCRefChain stretches a distributed-GC reference chain
// across the federation: the object on domain k is kept alive solely by
// a lease holder on domain k+1, renewing over a gateway link. Cutting
// one mid-chain gateway expires exactly the lease behind it — the rest
// of the chain keeps renewing — and the collector reclaims exactly that
// object.
func TestSimSwarmGCRefChain(t *testing.T) {
	const domains = 10
	const (
		cutFrom     = 4 // the d04|d05 gateway goes dark
		partitionAt = 200 * time.Millisecond
		sweepAt     = 600 * time.Millisecond
		healAt      = 1100 * time.Millisecond
		endAt       = 1300 * time.Millisecond
	)

	s := sim.New(31, sim.WithStrictSettle())
	defer s.Close()
	n := sim.Swarm{
		Domains:           domains,
		CapsulesPerDomain: 1,
		Intra:             odp.LinkProfile{Latency: 50 * time.Microsecond},
		Gateway:           odp.LinkProfile{Latency: 200 * time.Microsecond},
	}.Build(s)

	platforms := make([]*odp.Platform, domains)
	for d := 0; d < domains; d++ {
		platforms[d] = swarmPlatform(t, s, n.Addr(d, 0),
			odp.WithDomain(n.Domain(d)), odp.WithGCGrace(50*time.Millisecond))
	}
	defer closeAll(s, platforms[:])

	// Objects o0..o8 live on d00..d08; each is leased by the next domain
	// over exactly one gateway link. Domain 9 anchors the chain's end.
	for d := 0; d < domains-1; d++ {
		if _, err := platforms[d].Publish(fmt.Sprintf("o%d", d), odp.Object{
			Servant: workServant{},
			Env:     odp.Env{Leased: &odp.LeaseSpec{}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	holders := make([]*gc.Holder, 0, domains-1)
	for d := 1; d < domains; d++ {
		h := gc.NewHolder(platforms[d].Capsule, n.Addr(d, 0), 300*time.Millisecond,
			gc.WithHolderClock(s.Clock))
		holders = append(holders, h)
		objID := fmt.Sprintf("o%d", d-1)
		gcRef := platforms[d-1].Collector.Ref()
		if err := driveCall(t, s, time.Minute, func() error {
			h.Hold(objID, gcRef)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		s.Drain(func() {
			for _, h := range holders {
				h.Stop()
			}
		})
	}()

	s.Install(sim.NewFaultPlan().
		At(partitionAt+offGridSkew).PartitionSubnets(n.Domain(cutFrom), n.Domain(cutFrom+1)).
		At(healAt+offGridSkew).HealSubnets(n.Domain(cutFrom), n.Domain(cutFrom+1)))

	// Let the partition outlast the lease TTL, then sweep every
	// collector: only the object whose holder sits behind the cut may go.
	runTo(t, s, sweepAt)
	for d := 0; d < domains; d++ {
		victims := platforms[d].Collector.Sweep()
		switch {
		case d == cutFrom:
			if len(victims) != 1 || victims[0] != fmt.Sprintf("o%d", cutFrom) {
				t.Fatalf("d%02d sweep collected %v, want [o%d]", d, victims, cutFrom)
			}
		case len(victims) != 0:
			t.Fatalf("d%02d sweep collected %v, want nothing (its lease chain is intact)", d, victims)
		}
	}

	// Heal and run out the clock: the stranded holder's retransmissions
	// reach a collector that no longer knows the object, and every other
	// link keeps renewing.
	runTo(t, s, endAt)
	for d := 0; d < domains; d++ {
		if victims := platforms[d].Collector.Sweep(); len(victims) != 0 {
			t.Fatalf("d%02d post-heal sweep collected %v, want nothing", d, victims)
		}
	}

	rec := odp.GatherDomains(platforms...)
	for d := 0; d < domains; d++ {
		dom := n.Domain(d)
		want := uint64(0)
		if d == cutFrom {
			want = 1
		}
		if got := rec["domain."+dom+".gc.collected"]; got != want {
			t.Fatalf("domain.%s.gc.collected = %v, want %d", dom, got, want)
		}
		if d < domains-1 {
			renewals, _ := rec["domain."+dom+".gc.renewals"].(uint64)
			if d == cutFrom {
				// Only the initial Hold and the one pre-cut renewal count:
				// once o4 is collected, the stranded holder's retransmitted
				// renewals bounce off an unknown object.
				if renewals != 2 {
					t.Fatalf("domain.%s.gc.renewals = %d, want exactly 2 (pre-cut only)", dom, renewals)
				}
			} else if renewals < 3 {
				t.Fatalf("domain.%s.gc.renewals = %d, want ≥3 (chain link should keep renewing)", dom, renewals)
			}
		}
	}

	st := s.Fabric.Stats()
	if st.Cut == 0 {
		t.Fatal("gateway partition cut no renewals")
	}
	s.Mark("swarm gc chain collected=o%d cut=%d delivered=%d", cutFrom, st.Cut, st.Delivered)
	pinSwarmHash(t, s)
}
