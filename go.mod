module odp

go 1.22
