//go:build !race

package odp_test

// raceEnabled: see race_on_test.go.
const raceEnabled = false
