package odp_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"odp"
)

// TestNodeManagerThroughFacade bootstraps a node's default servers via
// the public API, advertises them through the trader, and manages them
// remotely.
func TestNodeManagerThroughFacade(t *testing.T) {
	ctx := context.Background()
	fabric := odp.NewFabric()
	t.Cleanup(func() { _ = fabric.Close() })
	nep, err := fabric.Endpoint("node")
	if err != nil {
		t.Fatal(err)
	}
	node, err := odp.NewPlatform("node", nep, odp.WithTrader("site"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	echoType := odp.Type{
		Name: "Echo",
		Ops: map[string]odp.Operation{
			"echo": {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.String}}},
		},
	}
	if err := node.Types.Register(echoType); err != nil {
		t.Fatal(err)
	}
	nm, err := odp.NewNodeManager(node, []odp.ServerSpec{{
		Name: "echo-svc",
		Type: echoType,
		New: func() (odp.Servant, error) {
			return odp.ServantFunc(func(_ context.Context, _ string, args []odp.Value) (string, []odp.Value, error) {
				return "ok", []odp.Value{args[0]}, nil
			}), nil
		},
		Properties: map[string]odp.Value{"tier": "default"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	// The default server is now discoverable through the trader.
	cep, err := fabric.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(node.RelocRef))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	tc := odp.NewTraderClient(client, node.Trader.Ref())
	offer, err := tc.ImportOne(ctx, odp.ImportSpec{Requirement: echoType})
	if err != nil {
		t.Fatal(err)
	}
	out, err := client.Bind(offer.Ref).Call(ctx, "echo", "ping")
	if err != nil || !out.Is("ok") {
		t.Fatalf("echo: %+v %v", out, err)
	}
	// Remote management: stop the server; the offer is withdrawn.
	out, err = client.Bind(nm.Ref()).Call(ctx, "stop", "echo-svc")
	if err != nil || !out.Is("ok") {
		t.Fatalf("remote stop: %+v %v", out, err)
	}
	if _, err := tc.ImportOne(ctx, odp.ImportSpec{Requirement: echoType}); err == nil {
		t.Fatal("offer survived remote stop")
	}
}

// TestEnterprisePolicyCompilesToLiveGuard crosses the enterprise and
// engineering viewpoints: a community's declarative statements compile
// into the security.Policy an actual woven guard enforces — §8's point
// that the enterprise language is "the design rationale for placing
// security requirements on the components".
func TestEnterprisePolicyCompilesToLiveGuard(t *testing.T) {
	community := odp.Community{
		Name:      "records-office",
		Objective: "keep records legible and unforged",
		Roles:     []string{"clerk", "reader"},
		Statements: []odp.PolicyStatement{
			{Kind: odp.Permission, Role: "clerk", Action: "put"},
			{Kind: odp.Permission, Role: "*", Action: "get"},
			{Kind: odp.Prohibition, Role: "reader", Action: "put"},
		},
	}
	assignment := odp.Assignment{
		"carla": {"clerk"},
		"rita":  {"reader"},
	}
	policy, err := community.CompileGuardPolicy(assignment, []string{"put", "get"})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	fabric := odp.NewFabric()
	t.Cleanup(func() { _ = fabric.Close() })
	sep, err := fabric.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	server.Keys.Share("carla", []byte("carla-key"))
	server.Keys.Share("rita", []byte("rita-key"))

	ref, err := server.Publish("records", odp.Object{
		Servant: newVault(),
		Type:    vaultType,
		Env:     odp.Env{Secured: &odp.SecureSpec{Policy: policy}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cep, err := fabric.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(server.RelocRef))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })

	carla := odp.NewSigner("carla", []byte("carla-key"))
	rita := odp.NewSigner("rita", []byte("rita-key"))

	// The clerk writes; the reader reads but cannot write.
	if out, err := client.Bind(ref).WithSigner(carla).Call(ctx, "put", "deed-1", int64(7)); err != nil || !out.Is("ok") {
		t.Fatalf("clerk put: %+v %v", out, err)
	}
	if out, err := client.Bind(ref).WithSigner(rita).Call(ctx, "get", "deed-1"); err != nil || !out.Is("ok") {
		t.Fatalf("reader get: %+v %v", out, err)
	}
	if _, err := client.Bind(ref).WithSigner(rita).Call(ctx, "put", "deed-2", int64(9)); err == nil {
		t.Fatal("reader write admitted despite prohibition")
	}
	// Audit: clerks are not obligated here, but the audit API works
	// end to end with the community the guard was compiled from.
	if err := community.CheckObligations(assignment, nil); err != nil {
		t.Fatalf("no obligations declared, audit should pass: %v", err)
	}
}

// ---- Ablation benchmarks: the cost of the design choices DESIGN.md
// calls out, each toggled off against the default. ----

// BenchmarkAblationTypeCheckingOn/Off: the price of §4.3's early
// signature checking on the dispatch path.
func benchTypeChecking(b *testing.B, checking bool) {
	fabric := odp.NewFabric()
	b.Cleanup(func() { _ = fabric.Close() })
	sep, err := fabric.Endpoint("server")
	if err != nil {
		b.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep,
		odp.WithCapsuleOptions(odp.CapsuleTypeChecking(checking)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = server.Close() })
	cellType := odp.Type{Name: "Cell", Ops: map[string]odp.Operation{
		"add": {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
	}}
	ref, err := server.Publish("cell", odp.Object{Servant: newBenchCell(0), Type: cellType})
	if err != nil {
		b.Fatal(err)
	}
	cep, err := fabric.Endpoint("client")
	if err != nil {
		b.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(server.RelocRef))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

func BenchmarkAblationTypeCheckingOn(b *testing.B)  { benchTypeChecking(b, true) }
func BenchmarkAblationTypeCheckingOff(b *testing.B) { benchTypeChecking(b, false) }

// BenchmarkAblationBinaryCodec/TextCodec compares the two network
// representations on the same invocation — the translation cost a
// federation gateway pays per leg.
func BenchmarkAblationBinaryCodec(b *testing.B) { benchCodecSimple(b, odp.BinaryCodec{}) }
func BenchmarkAblationTextCodec(b *testing.B)   { benchCodecSimple(b, odp.TextCodec{}) }

func benchCodecSimple(b *testing.B, codec odp.Codec) {
	fabric := odp.NewFabric()
	b.Cleanup(func() { _ = fabric.Close() })
	sep, err := fabric.Endpoint("server")
	if err != nil {
		b.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep, odp.WithCodec(codec))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = server.Close() })
	ref, err := server.Publish("cell", odp.Object{Servant: newBenchCell(0)})
	if err != nil {
		b.Fatal(err)
	}
	cep, err := fabric.Endpoint("client")
	if err != nil {
		b.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep,
		odp.WithCodec(codec), odp.WithRelocator(server.RelocRef))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

// BenchmarkAblationRetransmitInterval sweeps the QoS retransmission
// interval under 10% loss: too eager wastes bandwidth, too lazy wastes
// latency — the trade-off behind §5.1's "quality of service constraints
// must be specified".
func BenchmarkAblationRetransmitInterval(b *testing.B) {
	for _, interval := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		interval := interval
		b.Run(fmt.Sprintf("retransmit=%s", interval), func(b *testing.B) {
			fabric := odp.NewFabric(odp.WithSeed(7), odp.WithDefaultLink(odp.LinkProfile{
				Latency: 200 * time.Microsecond, Loss: 0.1,
			}))
			b.Cleanup(func() { _ = fabric.Close() })
			sep, err := fabric.Endpoint("server")
			if err != nil {
				b.Fatal(err)
			}
			server, err := odp.NewPlatform("server", sep)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = server.Close() })
			ref, err := server.Publish("cell", odp.Object{Servant: newBenchCell(0)})
			if err != nil {
				b.Fatal(err)
			}
			cep, err := fabric.Endpoint("client")
			if err != nil {
				b.Fatal(err)
			}
			client, err := odp.NewPlatform("client", cep, odp.WithRelocator(server.RelocRef))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = client.Close() })
			proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: 60 * time.Second, Retransmit: interval})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, proxy, "add", int64(1))
			}
		})
	}
}
