// Package odp is an open-distributed-processing platform in the style of
// ANSA / RM-ODP, reproducing the system described in Andrew Herbert's
// "The Challenge of ODP" (Berlin ODP Conference, 1991).
//
// The computational model is small: applications see only *interfaces* to
// abstract data types, reached through distribution-transparent
// references. Interaction is an interrogation (request/reply, returning
// one of a set of named outcomes each carrying its own results) or an
// announcement (request-only). The engineering model supplies selective,
// declarative, modular transparency: an application attaches an Env —
// environment constraints — to an interface, and the platform weaves the
// corresponding mechanisms (generated concurrency control, replica
// groups, relocation, passivation, checkpoint-recovery, guards, leases,
// instrumentation) into its access path.
//
// A minimal server:
//
//	fabric := odp.NewFabric()
//	ep, _ := fabric.Endpoint("server")
//	node, _ := odp.NewPlatform("server", ep)
//	ref, _ := node.Publish("greeter", odp.Object{
//		Servant: odp.ServantFunc(func(ctx context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
//			return "ok", []odp.Value{"hello, " + args[0].(string)}, nil
//		}),
//	})
//
// And a client, identical whether the interface is local, remote,
// replicated or migrating:
//
//	out, err := client.Bind(ref).Call(ctx, "greet", "world")
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// evaluation suite.
package odp

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/core"
	"odp/internal/enterprise"
	"odp/internal/federation"
	"odp/internal/group"
	"odp/internal/migrate"
	"odp/internal/netsim"
	"odp/internal/obs"
	"odp/internal/rpc"
	"odp/internal/security"
	"odp/internal/storage"
	"odp/internal/stream"
	"odp/internal/trader"
	"odp/internal/transport"
	"odp/internal/txn"
	"odp/internal/types"
	"odp/internal/wire"
)

// Data model (the computational language's value space).
type (
	// Value is any element of the computational data model: nil, bool,
	// int64, uint64, float64, string, []byte, List, Record or Ref.
	Value = wire.Value
	// List is an ordered sequence of values.
	List = wire.List
	// Record is a named-field aggregate.
	Record = wire.Record
	// Ref is a distribution-transparent interface reference.
	Ref = wire.Ref
	// Codec translates values to and from octets.
	Codec = wire.Codec
	// BinaryCodec is the native network data representation.
	BinaryCodec = wire.BinaryCodec
	// TextCodec is the alternative representation used across federation
	// technology boundaries.
	TextCodec = wire.TextCodec
	// PackedCodec is the compact varint representation (ansa-packed/1),
	// negotiated per connection over batching endpoints.
	PackedCodec = wire.PackedCodec
)

// Interface types and signatures.
type (
	// Type is an interface signature.
	Type = types.Type
	// Operation is one operation in a signature.
	Operation = types.Operation
	// Desc names a value type in a signature.
	Desc = types.Desc
	// TypeManager stores type descriptions and matches them.
	TypeManager = types.Manager
)

// Type descriptors.
const (
	Any    = types.Any
	Bool   = types.Bool
	Int    = types.Int
	Uint   = types.Uint
	Float  = types.Float
	String = types.String
	Bytes  = types.Bytes
	Rec    = types.Rec
)

// ListOf returns the descriptor for a homogeneous list.
func ListOf(d Desc) Desc { return types.List(d) }

// RefTo returns the descriptor for an interface reference.
func RefTo(name string) Desc { return types.RefTo(name) }

// Platform, objects and environment constraints.
type (
	// Platform is one ODP node: a capsule plus every engineering-model
	// service the transparency weaver may need.
	Platform = core.Platform
	// Object is a computational-model object: behaviour, signature and
	// environment constraints.
	Object = core.Object
	// Env is the declarative environment-constraint set.
	Env = core.Env
	// AtomicSpec requests concurrency transparency.
	AtomicSpec = core.AtomicSpec
	// SecureSpec requests a generated guard.
	SecureSpec = core.SecureSpec
	// RecoverSpec requests failure transparency.
	RecoverSpec = core.RecoverSpec
	// LeaseSpec requests garbage-collection tracking.
	LeaseSpec = core.LeaseSpec
	// ManagedSpec requests management instrumentation.
	ManagedSpec = core.ManagedSpec
	// ReplicaSpec requests replication transparency.
	ReplicaSpec = core.ReplicaSpec
	// Replicated is a published replica group.
	Replicated = core.Replicated
	// Proxy is a client-side binding to an interface.
	Proxy = core.Proxy
	// Outcome is an interrogation result.
	Outcome = core.Outcome
	// Option configures NewPlatform.
	Option = core.Option
	// Servant is the executable body of an ADT implementation.
	Servant = capsule.Servant
	// ServantFunc adapts a function to Servant.
	ServantFunc = capsule.ServantFunc
	// Interceptor wraps a dispatch path.
	Interceptor = capsule.Interceptor
	// QoS is the communications quality-of-service constraint.
	QoS = rpc.QoS
	// AdmissionConfig bounds per-client admission on a node's server
	// dispatch path; see WithAdmission.
	AdmissionConfig = rpc.AdmissionConfig
	// Clock abstracts the time source a platform runs on; see WithClock.
	Clock = clock.Clock
	// FakeClock is a manually advanced Clock for virtual-time testing.
	FakeClock = clock.Fake
)

// NewFakeClock returns a FakeClock reading start until advanced.
func NewFakeClock(start time.Time) *FakeClock { return clock.NewFake(start) }

// Replication modes.
const (
	// ModeActive executes on every replica (no fail-over gap).
	ModeActive = group.ModeActive
	// ModeStandby executes on the primary; backups replay on promotion.
	ModeStandby = group.ModeStandby
)

// NewPlatform assembles an ODP node on ep.
func NewPlatform(name string, ep transport.Endpoint, opts ...Option) (*Platform, error) {
	return core.NewPlatform(name, ep, opts...)
}

// PublishReplicated weaves replication transparency over several
// platforms.
func PublishReplicated(platforms []*Platform, spec ReplicaSpec, factory func() Servant) (*Replicated, error) {
	return core.PublishReplicated(platforms, spec, factory)
}

// Platform construction options.
var (
	// WithCodec selects the network data representation.
	WithCodec = core.WithCodec
	// WithStore supplies stable storage.
	WithStore = core.WithStore
	// WithRelocator points the node at an existing relocation service.
	WithRelocator = core.WithRelocator
	// WithTrader hosts a trading service under a federation context name.
	WithTrader = core.WithTrader
	// WithTraderSnapshotPolicy lets trader imports serve bounded-stale
	// offer snapshots instead of rebuilding on the first read after
	// every write (experiment E19).
	WithTraderSnapshotPolicy = core.WithTraderSnapshotPolicy
	// WithTraderFederationQoS sets the per-hop QoS base for federated
	// trader imports (timeout scaled by remaining hop budget).
	WithTraderFederationQoS = core.WithTraderFederationQoS
	// WithLockWait bounds transactional lock waits.
	WithLockWait = core.WithLockWait
	// WithGCGrace sets the collector's activity grace window.
	WithGCGrace = core.WithGCGrace
	// WithDomain tags the node with its administrative domain; the tag
	// rides in Gather and keys GatherDomains rollups (experiment E20).
	WithDomain = core.WithDomain
	// WithClock drives every time-dependent subsystem of the node from one
	// injected clock; share a clock.Fake across nodes and the netsim
	// fabric to run a whole system in virtual time (internal/sim).
	WithClock = core.WithClock
	// WithCapsuleOptions forwards options to the capsule.
	WithCapsuleOptions = core.WithCapsuleOptions
	// WithBatching wraps the node's endpoint in a write coalescer:
	// concurrent frames to one destination share BATCH datagrams,
	// amortising per-packet channel overhead (experiment E16).
	WithBatching = core.WithBatching
	// WithAdmission enables per-client token-bucket admission control on
	// the node's server dispatch path: over-budget invocations are shed
	// with ErrServerBusy instead of queueing (experiment E19).
	WithAdmission = core.WithAdmission
	// WithBusyRetry (an invoke option) retries an invocation shed by
	// admission control with exponential backoff.
	WithBusyRetry = capsule.WithBusyRetry
	// CapsuleTypeChecking toggles dispatch-time signature checking
	// (default on); pass through WithCapsuleOptions.
	CapsuleTypeChecking = capsule.WithTypeChecking
	// CapsuleLocalOptimisation toggles the §4.5 direct-local-access
	// optimisation (default on); pass through WithCapsuleOptions.
	CapsuleLocalOptimisation = capsule.WithLocalOptimisation
)

// Transport.
type (
	// Endpoint is a best-effort datagram endpoint.
	Endpoint = transport.Endpoint
	// Coalescer wraps an Endpoint with adaptive write coalescing; see
	// WithBatching for the usual way to enable it on a platform.
	Coalescer = transport.Coalescer
	// CoalescerStats snapshots a Coalescer's counters.
	CoalescerStats = transport.CoalescerStats
	// Fabric is the simulated network.
	Fabric = netsim.Fabric
	// LinkProfile describes one direction of a simulated link.
	LinkProfile = netsim.LinkProfile
)

// NewCoalescer wraps ep in a write coalescer directly (lower level than
// WithBatching; useful when composing transports by hand).
func NewCoalescer(ep Endpoint, opts ...transport.CoalescerOption) *Coalescer {
	return transport.NewCoalescer(ep, opts...)
}

// Coalescer tuning options, passed to WithBatching or NewCoalescer.
var (
	// BatchFlushThreshold sets the pending-bytes level that forces a
	// flush.
	BatchFlushThreshold = transport.WithFlushThreshold
	// BatchMaxDelay holds sub-threshold batches open for up to d.
	BatchMaxDelay = transport.WithMaxDelay
	// BatchMaxFrames caps sub-frames per batch.
	BatchMaxFrames = transport.WithMaxBatchFrames
	// BatchPendingLimit bounds bytes queued per destination.
	BatchPendingLimit = transport.WithPendingLimit
	// BatchClock injects the clock driving the max-delay window.
	BatchClock = transport.WithCoalescerClock
)

// NewFabric creates a simulated network fabric.
func NewFabric(opts ...netsim.Option) *Fabric { return netsim.NewFabric(opts...) }

// Simulated fabric options and profiles.
var (
	// WithSeed fixes the fabric's randomness.
	WithSeed = netsim.WithSeed
	// WithDefaultLink sets the default link profile.
	WithDefaultLink = netsim.WithDefaultLink
	// FabricClock schedules fabric deliveries on an injected clock
	// instead of real timers; with a FakeClock shared with WithClock
	// platforms, the network runs in virtual time.
	FabricClock = netsim.WithClock
	// LAN approximates a local segment.
	LAN = netsim.LAN
	// WAN approximates a wide-area path.
	WAN = netsim.WAN
)

// ListenTCP creates a real TCP endpoint for cross-process deployment.
func ListenTCP(bind string) (Endpoint, error) { return transport.ListenTCP(bind) }

// Observability. Tracing treats observation as a channel function: the
// same interceptor points that weave transparency also emit spans, so a
// single interrogation yields one causal tree across every node it
// touches (stub → binder → transport → dispatch, or the §4.5 co-located
// bypass as its own span kind).
type (
	// Span is one recorded operation of a trace.
	Span = obs.Span
	// SpanContext identifies a live span for propagation.
	SpanContext = obs.SpanContext
	// SpanCollector is a platform's pooled ring-buffer span sink.
	SpanCollector = obs.Collector
)

// Tracing options, passed to WithTracing.
var (
	// WithTracing equips the platform with a span collector and threads
	// it through stub, binder, rpc, coalescer and dispatch layers.
	// Sampling starts off (zero overhead); turn it on with
	// TraceSampleEvery or the "obs.sample_every" management parameter.
	WithTracing = core.WithTracing
	// TraceSampleEvery samples one root trace in n (0 disables, 1 traces
	// everything).
	TraceSampleEvery = obs.WithSampleEvery
	// TraceRingSize bounds the per-node ring of retained spans.
	TraceRingSize = obs.WithRingSize
)

// Latency histograms, the metrics time series and the anomaly flight
// recorder. Every channel stage that matters records into a zero-alloc
// log-bucketed histogram; a clock-driven recorder turns Gather
// snapshots into rates; armed SLO rules capture black-box breach
// reports served by the management "blackbox" op.
type (
	// HistogramSnapshot is a point-in-time latency distribution of one
	// channel stage (32 log2 microsecond buckets).
	HistogramSnapshot = obs.HistogramSnapshot
	// SLORule is one armed service-level objective evaluated against
	// every recorder sample; build with CeilingRule or StallRule.
	SLORule = obs.Rule
	// BreachReport is the flight recorder's black box: the rule that
	// fired, the breaching window's counter deltas and the last spans.
	BreachReport = obs.BreachReport
)

// Recorder and flight-recorder options.
var (
	// WithRecorder samples the node's Gather snapshot every interval
	// into a bounded ring, from which the management "series" op derives
	// per-second rates.
	WithRecorder = core.WithRecorder
	// WithFlightRecorder arms SLO rules against the recorder's samples
	// (implies WithRecorder).
	WithFlightRecorder = core.WithFlightRecorder
	// WithFlightOptions tunes the flight recorder's report ring and span
	// capture.
	WithFlightOptions = core.WithFlightOptions
	// CeilingRule arms a maximum on a Gather key (latency quantiles,
	// queue depths).
	CeilingRule = obs.CeilingRule
	// StallRule arms a zero-progress watchdog on a counter key.
	StallRule = obs.StallRule
	// RecorderDepth bounds the recorder's retained samples.
	RecorderDepth = obs.WithRecorderDepth
	// FlightDepth bounds the flight recorder's retained reports.
	FlightDepth = obs.WithFlightDepth
	// FlightSpanLimit bounds the spans captured per breach report.
	FlightSpanLimit = obs.WithFlightSpanLimit
)

// HistogramKeys reassembles the latency histograms folded into a
// gathered record ("<base>_hist.<i>" keys), keyed by base.
func HistogramKeys(rec Record) map[string]HistogramSnapshot { return obs.HistogramKeys(rec) }

// SpansFromList decodes a span list fetched from a node's management
// "spans" operation.
func SpansFromList(l List) []Span { return obs.SpansFromList(l) }

// FormatSpans renders spans as deterministic per-trace trees, the format
// odptop shows.
func FormatSpans(spans []Span) string { return obs.FormatForest(spans) }

// Storage.
type (
	// Store is a stable repository of snapshots and logs.
	Store = storage.Store
)

// NewMemStore returns an in-memory store.
func NewMemStore() Store { return storage.NewMemStore() }

// NewFileStore opens a directory-backed store.
func NewFileStore(dir string) (Store, error) { return storage.NewFileStore(dir) }

// Transactions.
type (
	// Txn is one atomic activity.
	Txn = txn.Txn
	// Separation is the separation-constraint specification.
	Separation = txn.Separation
)

// Security.
type (
	// Signer produces credentials for one principal.
	Signer = security.Signer
	// Policy is a declarative access policy.
	Policy = security.Policy
	// Rule is one policy clause.
	Rule = security.Rule
)

// NewSigner creates a signer for principal with its shared secret.
func NewSigner(principal string, secret []byte) *Signer {
	return security.NewSigner(principal, secret)
}

// Trading.
type (
	// TraderClient talks to a (possibly remote) trading service.
	TraderClient = trader.Client
	// ImportSpec is a client's service requirement.
	ImportSpec = trader.ImportSpec
	// Offer is one advertised service.
	Offer = trader.Offer
	// Constraint restricts matching offers by a property.
	Constraint = trader.Constraint
	// TraderStats snapshots a trader's offer-store counters (also folded
	// into Platform.Gather under "trader.").
	TraderStats = trader.TraderStats
)

// Trading constraint operators.
const (
	OpEq     = trader.OpEq
	OpNe     = trader.OpNe
	OpGe     = trader.OpGe
	OpLe     = trader.OpLe
	OpExists = trader.OpExists
)

// NewTraderClient binds a platform to the trading service at ref.
func NewTraderClient(p *Platform, ref Ref) *TraderClient {
	return trader.NewClient(p.Capsule, ref)
}

// GatherDomains folds many platforms' Gather snapshots into per-domain
// "domain.<name>.<key>" sums, keyed by each node's WithDomain tag — the
// per-domain view of a federation swarm (experiment E20).
func GatherDomains(platforms ...*Platform) Record {
	return core.GatherDomains(platforms...)
}

// Streams.
type (
	// StreamSpec is the template of an explicit stream binding.
	StreamSpec = stream.Spec
	// Frame is one element of a flow.
	Frame = stream.Frame
	// Sink consumes frames.
	Sink = stream.Sink
	// SinkFunc adapts a function to Sink.
	SinkFunc = stream.SinkFunc
	// StreamReceiver is the consumer-side stream interface.
	StreamReceiver = stream.Receiver
	// StreamBinding is the producer-side end of a bound flow.
	StreamBinding = stream.Binding
	// SyncGroup aligns several flows by timestamp.
	SyncGroup = stream.SyncGroup
)

// NewStreamReceiver exports a stream interface on the platform.
func NewStreamReceiver(p *Platform, acceptor func(StreamSpec) (Sink, error)) (*StreamReceiver, error) {
	return stream.NewReceiver(p.Capsule, acceptor)
}

// BindStream performs the explicit binding handshake.
func BindStream(p *Platform, rxRef Ref, spec StreamSpec) (*StreamBinding, error) {
	return stream.Bind(context.Background(), p.Capsule, rxRef, spec)
}

// NewSyncGroup creates an inter-flow synchroniser.
func NewSyncGroup(maxSkewMs int64, out func(flow string, f Frame)) *SyncGroup {
	return stream.NewSyncGroup(maxSkewMs, out)
}

// Federation.
type (
	// Gateway is a federation interceptor between two domains.
	Gateway = federation.Gateway
	// GatewayPolicy authorises boundary crossings.
	GatewayPolicy = federation.Policy
	// Side names one side of a gateway.
	Side = federation.Side
)

// Gateway sides.
const (
	SideA = federation.SideA
	SideB = federation.SideB
)

// NewGateway creates a federation interceptor between the two platforms'
// domains.
func NewGateway(name string, a, b *Platform, policy GatewayPolicy) *Gateway {
	return federation.New(name, a.Capsule, b.Capsule, policy)
}

// Migration and recovery.
type (
	// MovableServant is a servant that can snapshot and restore its
	// state, as migration, passivation and recovery require (§5.5).
	MovableServant = migrate.Servant
)

// Node management (§6).
type (
	// NodeManager recreates a node's default servers after restart and
	// exposes remote start/stop management.
	NodeManager = capsule.NodeManager
	// ServerSpec describes one default server of a node.
	ServerSpec = capsule.ServerSpec
)

// NewNodeManager creates a node manager for the platform. Its default
// servers are advertised through the platform's trader when one is
// hosted.
func NewNodeManager(p *Platform, specs []ServerSpec) (*NodeManager, error) {
	var adv capsule.Advertiser
	if p.Trader != nil {
		adv = p.Trader
	}
	return capsule.NewNodeManager(p.Capsule, adv, specs)
}

// Enterprise language (§8).
type (
	// Community is an organization with roles, objectives and policy.
	Community = enterprise.Community
	// PolicyStatement is one clause of a community's policy.
	PolicyStatement = enterprise.Statement
	// Assignment binds principals to roles within a community.
	Assignment = enterprise.Assignment
)

// Enterprise policy statement kinds.
const (
	// Permission allows a role an action.
	Permission = enterprise.Permission
	// Prohibition forbids a role an action, overriding permissions.
	Prohibition = enterprise.Prohibition
	// Obligation requires a role to perform an action (checked by audit).
	Obligation = enterprise.Obligation
)

// RegisterFactory makes a type receivable and re-activatable on the
// platform's migration host.
func RegisterFactory(p *Platform, typeName string, f func() MovableServant) {
	p.Mover.RegisterFactory(typeName, f)
}

// EncodeRef renders an interface reference as a printable string, for
// passing between processes on command lines and in configuration.
func EncodeRef(r Ref) (string, error) {
	raw, err := wire.BinaryCodec{}.Encode(nil, r)
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// DecodeRef parses a string produced by EncodeRef.
func DecodeRef(s string) (Ref, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return Ref{}, fmt.Errorf("odp: decode ref: %w", err)
	}
	v, rest, err := wire.BinaryCodec{}.Decode(raw)
	if err != nil {
		return Ref{}, fmt.Errorf("odp: decode ref: %w", err)
	}
	if len(rest) != 0 {
		return Ref{}, errors.New("odp: decode ref: trailing bytes")
	}
	ref, ok := v.(Ref)
	if !ok {
		return Ref{}, fmt.Errorf("odp: decode ref: value is %T", v)
	}
	return ref, nil
}

// ErrServerBusy reports that server-side admission control shed an
// invocation; back off and retry (or opt into WithBusyRetry).
var ErrServerBusy = rpc.ErrServerBusy

// DefaultQoS returns the platform's default invocation constraints.
func DefaultQoS() QoS {
	return QoS{Timeout: rpc.DefaultTimeout, Retransmit: rpc.DefaultRetransmit}
}

// WaitSettle is a convenience for examples and tests: it sleeps briefly
// so announcements and background protocols settle.
func WaitSettle() { clock.Real{}.Sleep(50 * time.Millisecond) }
