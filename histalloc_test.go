package odp_test

// Allocation gate for latency-histogram recording: the client, server,
// bypass and binder histograms record on every invocation — always on,
// no sampling knob — so the claim that recording is free must hold on
// the tightest path there is, the packed E1 remote loopback. The gate
// proves two things at once: the histograms really are in the measured
// path (their counts advance by exactly the measured calls), and the
// path's allocation budget is the same one BENCH_9 recorded before the
// histograms existed.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"odp"
)

func TestHistogramRecordingAddsNoAllocsE1(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are skewed under -race: sync.Pool drops puts by design")
	}
	f := odp.NewFabric(odp.WithSeed(1))
	defer f.Close()
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep, odp.WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ref, err := server.Publish("cell", odp.Object{Servant: &countingServant{}})
	if err != nil {
		t.Fatal(err)
	}
	proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	ctx := context.Background()
	call := func() {
		if _, err := proxy.Call(ctx, "add"); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		call()
		if n, _ := client.Gather()["rpc.client.packed_upgrades"].(uint64); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("packed codec not negotiated within warm-up deadline")
		}
		runtime.Gosched()
	}
	for i := 0; i < 100; i++ {
		call()
	}

	const runs = 200
	callsBefore, _ := client.Gather()["rpc.client.call_count"].(uint64)
	dispatchBefore, _ := server.Gather()["rpc.server.dispatch_count"].(uint64)
	allocs := testing.AllocsPerRun(runs, call)
	callsAfter, _ := client.Gather()["rpc.client.call_count"].(uint64)
	dispatchAfter, _ := server.Gather()["rpc.server.dispatch_count"].(uint64)

	// AllocsPerRun executes runs+1 calls (one warm-up); every one must
	// have landed in both ends' histograms or the gate is measuring a
	// path that skips recording.
	if got := callsAfter - callsBefore; got < runs {
		t.Fatalf("client call histogram advanced %d over %d measured calls", got, runs)
	}
	if got := dispatchAfter - dispatchBefore; got < runs {
		t.Fatalf("server dispatch histogram advanced %d over %d measured calls", got, runs)
	}
	if allocs >= packedE1AllocBudget {
		t.Fatalf("packed E1 loopback with histogram recording allocates %.1f/op, budget < %d — recording must stay alloc-free",
			allocs, packedE1AllocBudget)
	}
	t.Logf("packed E1 with histograms: %.1f allocs/op (budget < %d)", allocs, packedE1AllocBudget)
}
