package odp_test

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"odp"
)

func TestEncodeDecodeRef(t *testing.T) {
	ref := odp.Ref{
		ID:        "obj-1",
		TypeName:  "Thing",
		Endpoints: []string{"tcp:10.0.0.1:7000", "inproc:n1"},
		Epoch:     5,
		Context:   []string{"org-a", "gw"},
	}
	enc, err := odp.EncodeRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := odp.DecodeRef(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != ref.ID || got.TypeName != ref.TypeName || got.Epoch != ref.Epoch ||
		len(got.Endpoints) != 2 || got.Endpoints[0] != ref.Endpoints[0] ||
		len(got.Context) != 2 || got.Context[1] != "gw" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := odp.DecodeRef("not base64 !!!"); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := odp.DecodeRef("aGVsbG8="); err == nil {
		t.Fatal("non-ref payload decoded")
	}
}

func TestEncodeDecodeRefProperty(t *testing.T) {
	prop := func(id, typeName, ep string, epoch uint32) bool {
		ref := odp.Ref{ID: id, TypeName: typeName, Endpoints: []string{ep}, Epoch: epoch}
		enc, err := odp.EncodeRef(ref)
		if err != nil {
			return false
		}
		got, err := odp.DecodeRef(enc)
		if err != nil {
			return false
		}
		return got.ID == id && got.TypeName == typeName && got.Epoch == epoch &&
			len(got.Endpoints) == 1 && got.Endpoints[0] == ep
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIQuickstart is the doc-comment example as a test: the
// public façade alone is enough to build a working system.
func TestPublicAPIQuickstart(t *testing.T) {
	fabric := odp.NewFabric()
	t.Cleanup(func() { _ = fabric.Close() })
	sep, err := fabric.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	node, err := odp.NewPlatform("server", sep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	ref, err := node.Publish("greeter", odp.Object{
		Servant: odp.ServantFunc(func(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
			return "ok", []odp.Value{"hello, " + args[0].(string)}, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	cep, err := fabric.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(node.RelocRef))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	out, err := client.Bind(ref).Call(context.Background(), "greet", "world")
	if err != nil || !out.Is("ok") {
		t.Fatalf("call: %+v %v", out, err)
	}
	if s, _ := out.Str(0); s != "hello, world" {
		t.Fatalf("got %q", s)
	}
}

func TestDefaultQoS(t *testing.T) {
	q := odp.DefaultQoS()
	if q.Timeout <= 0 || q.Retransmit <= 0 {
		t.Fatalf("degenerate default QoS %+v", q)
	}
	if q.Retransmit >= q.Timeout {
		t.Fatal("retransmit interval exceeds timeout")
	}
}

func TestPublicTCPPlatform(t *testing.T) {
	// A platform over real TCP through the public API alone.
	sep, err := odp.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	ref, err := server.Publish("cell", odp.Object{
		Servant: odp.ServantFunc(func(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
			return "ok", []odp.Value{int64(42)}, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	cep, err := odp.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(server.RelocRef))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	out, err := client.Bind(ref).WithQoS(odp.QoS{Timeout: 5 * time.Second}).
		Call(context.Background(), "get")
	if err != nil || !out.Is("ok") {
		t.Fatalf("tcp call: %+v %v", out, err)
	}
}
