package odp_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odp"
	"odp/internal/sim"
)

// vaultServant is the integration-test workload: a secured, migratable
// key/value vault.
type vaultServant struct {
	mu sync.Mutex
	m  map[string]int64
}

func newVault() *vaultServant { return &vaultServant{m: make(map[string]int64)} }

func (v *vaultServant) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	switch op {
	case "put":
		v.m[args[0].(string)] = args[1].(int64)
		return "ok", nil, nil
	case "get":
		n, ok := v.m[args[0].(string)]
		if !ok {
			return "missing", nil, nil
		}
		return "ok", []odp.Value{n}, nil
	case "size":
		return "ok", []odp.Value{int64(len(v.m))}, nil
	default:
		return "", nil, fmt.Errorf("vault: no op %q", op)
	}
}

func (v *vaultServant) Snapshot() ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, uint32(len(v.m)))
	for k, val := range v.m {
		kb := []byte(k)
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(kb)))
		buf = append(buf, l[:]...)
		buf = append(buf, kb...)
		var vb [8]byte
		binary.BigEndian.PutUint64(vb[:], uint64(val))
		buf = append(buf, vb[:]...)
	}
	return buf, nil
}

func (v *vaultServant) Restore(data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.m = make(map[string]int64)
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	for i := uint32(0); i < n; i++ {
		l := binary.BigEndian.Uint32(data)
		data = data[4:]
		k := string(data[:l])
		data = data[l:]
		v.m[k] = int64(binary.BigEndian.Uint64(data))
		data = data[8:]
	}
	return nil
}

var vaultType = odp.Type{
	Name: "Vault",
	Ops: map[string]odp.Operation{
		"put":  {Args: []odp.Desc{odp.String, odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {}}},
		"get":  {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}, "missing": {}}},
		"size": {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
	},
}

// TestIntegrationFullLifecycle drives one object through the platform's
// whole lifecycle, crossing module boundaries at every step: publish
// (weaver: guard + instrumentation + migration gate) → trade → import by
// signature → authenticated use → migration to another node → continued
// use through the stale reference (forward + relocator) → passivation →
// transparent reactivation → management statistics.
func TestIntegrationFullLifecycle(t *testing.T) {
	ctx := context.Background()
	fabric := odp.NewFabric(odp.WithSeed(42), odp.WithDefaultLink(odp.LinkProfile{Latency: 100 * time.Microsecond}))
	t.Cleanup(func() { _ = fabric.Close() })

	mk := func(name string, opts ...odp.Option) *odp.Platform {
		ep, err := fabric.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := odp.NewPlatform(name, ep, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		return p
	}
	home := mk("home", odp.WithTrader("hq"))
	away := mk("away", odp.WithRelocator(home.RelocRef))
	client := mk("client", odp.WithRelocator(home.RelocRef))

	// Shared secrets and factories.
	home.Keys.Share("alice", []byte("alice-key"))
	away.Keys.Share("alice", []byte("alice-key"))
	odp.RegisterFactory(away, "Vault", func() odp.MovableServant { return newVault() })
	odp.RegisterFactory(home, "Vault", func() odp.MovableServant { return newVault() })
	alice := odp.NewSigner("alice", []byte("alice-key"))

	// 1. Publish with a woven stack: guard + metrics + movable.
	ref, err := home.Publish("vault", odp.Object{
		Servant: newVault(),
		Type:    vaultType,
		Env: odp.Env{
			Secured: &odp.SecureSpec{Policy: odp.Policy{Rules: []odp.Rule{
				{Principal: "alice", Op: "*", Allow: true},
			}}},
			Managed: &odp.ManagedSpec{MetricPrefix: "vault"},
			Movable: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Trade it; 3. the client imports by structural requirement.
	if _, err := home.Trader.Advertise(vaultType, ref, map[string]odp.Value{"tier": "gold"}); err != nil {
		t.Fatal(err)
	}
	req := odp.Type{Name: "KV", Ops: map[string]odp.Operation{
		"put": {Args: []odp.Desc{odp.String, odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {}}},
		"get": {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}, "missing": {}}},
	}}
	tc := odp.NewTraderClient(client, home.Trader.Ref())
	offer, err := tc.ImportOne(ctx, odp.ImportSpec{
		Requirement: req,
		Constraints: []odp.Constraint{{Key: "tier", Op: odp.OpEq, Value: "gold"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// 4. Authenticated use; unauthenticated use is refused.
	proxy := client.Bind(offer.Ref).WithSigner(alice)
	for i := 0; i < 10; i++ {
		out, err := proxy.Call(ctx, "put", fmt.Sprintf("k%d", i), int64(i*i))
		if err != nil || !out.Is("ok") {
			t.Fatalf("put %d: %+v %v", i, out, err)
		}
	}
	if _, err := client.Bind(offer.Ref).Call(ctx, "get", "k1"); err == nil {
		t.Fatal("unauthenticated access admitted")
	}

	// 5. Migrate to the away node.
	newRef, err := home.Mover.Migrate(ctx, "vault", away.Mover.AcceptorRef())
	if err != nil {
		t.Fatal(err)
	}
	if newRef.Endpoints[0] != "away" {
		t.Fatalf("migrated to %v", newRef.Endpoints)
	}

	// 6. The client's OLD reference still works; note the migration
	// preserves neither the guard nor metrics automatically — the away
	// node re-exports through its own migrate host, so re-secure there.
	// (The woven extras at the destination are the destination's choice —
	// transparency mechanisms are per-node engineering, §4.5.)
	out, err := client.Bind(offer.Ref).Call(ctx, "get", "k3")
	if err != nil || !out.Is("ok") {
		t.Fatalf("post-migration get via stale ref: %+v %v", out, err)
	}
	if n, _ := out.Int(0); n != 9 {
		t.Fatalf("state lost in migration: %d", n)
	}

	// 7. Passivate at the away node; a later invocation transparently
	// reactivates it from the store.
	if err := away.Mover.Passivate("vault"); err != nil {
		t.Fatal(err)
	}
	out, err = client.Bind(newRef).Call(ctx, "size")
	if err != nil || !out.Is("ok") {
		t.Fatalf("post-passivation size: %+v %v", out, err)
	}
	if n, _ := out.Int(0); n != 10 {
		t.Fatalf("reactivated vault has %d entries", n)
	}

	// 8. Management saw the secured traffic at the home node.
	out, err = client.Bind(home.Agent.Ref()).Call(ctx, "stats")
	if err != nil || !out.Is("ok") {
		t.Fatal(err)
	}
	stats := out.Result(0).(odp.Record)
	calls, _ := stats["c.vault.calls"].(uint64)
	if calls < 10 {
		t.Fatalf("management lost track: %d calls", calls)
	}
}

// TestIntegrationPartitionHealing exercises the protocol stack across a
// network partition: invocations stall during the cut and succeed after
// healing, with no duplicate executions. It runs under the deterministic
// simulation harness — the partition window, retransmissions and the
// heal are all virtual-time events, so the scenario completes in
// milliseconds of wall time.
func TestIntegrationPartitionHealing(t *testing.T) {
	ctx := context.Background()
	s := sim.New(9, sim.WithDefaultLink(odp.LinkProfile{Latency: 200 * time.Microsecond}))
	t.Cleanup(s.Close)
	server := simPlatform(t, s, "server")
	client := simPlatform(t, s, "client", odp.WithRelocator(server.RelocRef))

	counter := &countingServant{}
	ref, err := server.Publish("ctr", odp.Object{Servant: counter})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-partition sanity.
	if err := driveCall(t, s, 30*time.Second, func() error {
		_, err := client.Bind(ref).Call(ctx, "add")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Cut the network mid-call: the call is issued, the partition opens,
	// then heals while the client is still retransmitting.
	s.Fabric.Partition("client", "server", true)
	done := make(chan error, 1)
	g0 := s.Clock.Gen()
	go func() {
		_, err := client.Bind(ref).
			WithQoS(odp.QoS{Timeout: 10 * time.Second, Retransmit: 10 * time.Millisecond}).
			Call(ctx, "add")
		done <- err
	}()
	// Hold virtual time until the call has armed its timers, then sit
	// out 150ms of virtual partition: every retransmission must be cut.
	for s.Clock.Gen() == g0 {
		runtime.Gosched()
	}
	s.RunFor(150 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("call completed across a partition: %v", err)
	default:
	}
	s.Fabric.Partition("client", "server", false)
	var healErr error
	s.Run(t, 30*time.Second, func() bool {
		select {
		case healErr = <-done:
			return true
		default:
			return false
		}
	})
	if healErr != nil {
		t.Fatalf("call failed after heal: %v", healErr)
	}
	if got := counter.load(); got != 2 {
		t.Fatalf("executions = %d, want 2 (no duplicates across partition)", got)
	}
}

type countingServant struct {
	mu sync.Mutex
	n  int64
}

func (c *countingServant) Dispatch(_ context.Context, op string, _ []odp.Value) (string, []odp.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return "ok", []odp.Value{c.n}, nil
}

func (c *countingServant) load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestIntegrationReplicatedSecuredDirectory layers replication and
// trading together: a replicated directory traded and imported by
// signature, surviving the loss of a member mid-use. It runs under the
// simulation harness: heartbeats, the failure detector and the retry
// loop all tick in virtual time.
func TestIntegrationReplicatedTradedDirectory(t *testing.T) {
	ctx := context.Background()
	s := sim.New(11)
	t.Cleanup(s.Close)
	nodes := []*odp.Platform{
		simPlatform(t, s, "n0", odp.WithTrader("hq")),
		simPlatform(t, s, "n1"),
		simPlatform(t, s, "n2"),
	}
	client := simPlatform(t, s, "client", odp.WithRelocator(nodes[0].RelocRef))

	var rep *odp.Replicated
	if err := driveCall(t, s, 30*time.Second, func() error {
		var err error
		rep, err = odp.PublishReplicated(nodes, odp.ReplicaSpec{
			GroupID:           "dir",
			Mode:              odp.ModeActive,
			HeartbeatInterval: 25 * time.Millisecond,
			FailureTimeout:    200 * time.Millisecond,
		}, func() odp.Servant { return newVault() })
		return err
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain(rep.Stop) })

	// Trade the group reference like any singleton.
	if _, err := nodes[0].Trader.Advertise(vaultType, rep.Ref(), nil); err != nil {
		t.Fatal(err)
	}
	var offer odp.Offer
	if err := driveCall(t, s, 30*time.Second, func() error {
		tc := odp.NewTraderClient(client, nodes[0].Trader.Ref())
		var err error
		offer, err = tc.ImportOne(ctx, odp.ImportSpec{Requirement: vaultType})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	write := func(k string, v int64) error {
		deadline := s.Clock.Now().Add(10 * time.Second)
		for {
			err := driveCall(t, s, 15*time.Second, func() error {
				_, err := client.Bind(offer.Ref).
					WithQoS(odp.QoS{Timeout: 400 * time.Millisecond}).
					Call(ctx, "put", k, v)
				return err
			})
			if err == nil {
				return nil
			}
			if s.Clock.Now().After(deadline) {
				return err
			}
			s.RunFor(20 * time.Millisecond)
		}
	}
	for i := 0; i < 5; i++ {
		if err := write(fmt.Sprintf("k%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a backup (not the sequencer): service continues unaffected.
	rep.Members[2].Stop()
	s.Fabric.Isolate("n2", true)
	if err := write("after-backup-loss", 99); err != nil {
		t.Fatal(err)
	}
	if err := driveCall(t, s, 30*time.Second, func() error {
		out, err := client.Bind(offer.Ref).WithQoS(odp.QoS{Timeout: 2 * time.Second}).Call(ctx, "get", "k3")
		if err != nil || !out.Is("ok") {
			return fmt.Errorf("read after backup loss: %+v %v", out, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSoakMixedWorkload runs a sustained mixed workload — plain invokes,
// transactions, announcements, migrations and sweeps concurrently — as a
// whole-platform shakedown. The workload window is measured in virtual
// time under the simulation harness, so the soak's seconds of protocol
// time cost a fraction of that in wall time (E17).
func TestSoakMixedWorkload(t *testing.T) {
	ctx := context.Background()
	s := sim.New(21, sim.WithDefaultLink(odp.LinkProfile{
		Latency: 100 * time.Microsecond, Jitter: 100 * time.Microsecond,
	}))
	t.Cleanup(s.Close)
	nodeA := simPlatform(t, s, "na", odp.WithGCGrace(50*time.Millisecond))
	nodeB := simPlatform(t, s, "nb", odp.WithRelocator(nodeA.RelocRef))
	client := simPlatform(t, s, "nc", odp.WithRelocator(nodeA.RelocRef))
	odp.RegisterFactory(nodeA, "Vault", func() odp.MovableServant { return newVault() })
	odp.RegisterFactory(nodeB, "Vault", func() odp.MovableServant { return newVault() })

	// Workload 1: plain counter traffic.
	plainRef, err := nodeA.Publish("soak-plain", odp.Object{Servant: &countingServant{}})
	if err != nil {
		t.Fatal(err)
	}
	// Workload 2: two transactional accounts.
	sep := odp.Separation{ReadOnly: map[string]bool{"get": true}}
	txRefA, err := nodeA.Publish("soak-txa", odp.Object{
		Servant: newVault(), Env: odp.Env{Atomic: &odp.AtomicSpec{Separation: sep}},
	})
	if err != nil {
		t.Fatal(err)
	}
	txRefB, err := nodeB.Publish("soak-txb", odp.Object{
		Servant: newVault(), Env: odp.Env{Atomic: &odp.AtomicSpec{Separation: sep}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Workload 3: a migrating vault.
	hotRef, err := nodeA.Publish("soak-hot", odp.Object{
		Servant: newVault(), Type: vaultType, Env: odp.Env{Movable: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The workload window is virtual: each goroutine runs until the
	// shared fake clock passes the deadline, parking inside calls while
	// the test goroutine advances time.
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	deadline := s.Clock.Now().Add(time.Second)
	var plainN, txnN, hotN int64

	wg.Add(1)
	go func() { // plain traffic
		defer wg.Done()
		for s.Clock.Now().Before(deadline) {
			if _, err := client.Bind(plainRef).WithQoS(odp.QoS{Timeout: 5 * time.Second}).
				Call(ctx, "hit"); err != nil {
				errCh <- fmt.Errorf("plain: %w", err)
				return
			}
			atomic.AddInt64(&plainN, 1)
		}
	}()
	wg.Add(1)
	go func() { // transactional traffic
		defer wg.Done()
		for i := 0; s.Clock.Now().Before(deadline); i++ {
			tx := client.Coordinator.Begin()
			_, _, err := tx.Invoke(ctx, txRefA, "put", []odp.Value{"k", int64(i)})
			if err == nil {
				_, _, err = tx.Invoke(ctx, txRefB, "put", []odp.Value{"k", int64(i)})
			}
			if err != nil {
				_ = tx.Abort(ctx)
				continue
			}
			if err := tx.Commit(ctx); err != nil {
				errCh <- fmt.Errorf("commit: %w", err)
				return
			}
			atomic.AddInt64(&txnN, 1)
		}
	}()
	wg.Add(1)
	go func() { // migrating object with live readers
		defer wg.Done()
		at := "na"
		for i := 0; s.Clock.Now().Before(deadline); i++ {
			if _, err := client.Bind(hotRef).WithQoS(odp.QoS{Timeout: 5 * time.Second}).
				Call(ctx, "put", fmt.Sprintf("k%d", i), int64(i)); err != nil {
				errCh <- fmt.Errorf("hot put: %w", err)
				return
			}
			if i%20 == 10 {
				src, dst := nodeA, nodeB
				if at == "nb" {
					src, dst = nodeB, nodeA
				}
				if _, err := src.Mover.Migrate(ctx, "soak-hot", dst.Mover.AcceptorRef()); err != nil {
					errCh <- fmt.Errorf("migrate: %w", err)
					return
				}
				if at == "na" {
					at = "nb"
				} else {
					at = "na"
				}
			}
			atomic.AddInt64(&hotN, 1)
		}
	}()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	s.Run(t, 30*time.Second, func() bool {
		select {
		case <-finished:
			return true
		default:
			return false
		}
	})
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&plainN) == 0 || atomic.LoadInt64(&txnN) == 0 || atomic.LoadInt64(&hotN) == 0 {
		t.Fatalf("a workload made no progress: plain=%d txn=%d hot=%d", plainN, txnN, hotN)
	}
	t.Logf("soak: %v virtual, plain=%d txn=%d hot=%d", s.Elapsed(), plainN, txnN, hotN)
}
