package odp_test

// Observability acceptance tests: a sim-driven traced interrogation
// yields one deterministic cross-node span tree retrievable through the
// management interface, and tracing left unsampled adds nothing to the
// E1 hot path.

import (
	"context"
	"strings"
	"testing"
	"time"

	"odp"
	"odp/internal/sim"
)

// fetchSpans interrogates a node's management interface for its span
// ring, driving virtual time until the reply lands.
func fetchSpans(t *testing.T, s *sim.Sim, from *odp.Platform, agentRef odp.Ref) []odp.Span {
	t.Helper()
	var spans []odp.Span
	if err := driveCall(t, s, time.Minute, func() error {
		out, err := from.Bind(agentRef).
			WithQoS(odp.QoS{Timeout: 30 * time.Second, Retransmit: 5 * time.Millisecond}).
			Call(context.Background(), "spans")
		if err != nil {
			return err
		}
		list, _ := out.Result(0).(odp.List)
		spans = odp.SpansFromList(list)
		return nil
	}); err != nil {
		t.Fatalf("spans via management interface: %v", err)
	}
	return spans
}

// runTracedSim drives one remote and one co-located traced invocation
// under the simulation harness, retrieves both nodes' span rings through
// the management interface, and returns the rendered forest. The forest
// is the determinism artifact: same seed, same bytes.
func runTracedSim(t *testing.T, s *sim.Sim) string {
	t.Helper()
	ctx := context.Background()
	server := simPlatform(t, s, "server", odp.WithTracing(odp.TraceSampleEvery(1)))
	client := simPlatform(t, s, "client", odp.WithTracing(odp.TraceSampleEvery(1)))

	remote := &countingServant{}
	ref, err := server.Publish("ctr", odp.Object{Servant: remote})
	if err != nil {
		t.Fatal(err)
	}
	local := &countingServant{}
	lref, err := client.Publish("loc", odp.Object{Servant: local})
	if err != nil {
		t.Fatal(err)
	}

	qos := odp.QoS{Timeout: 30 * time.Second, Retransmit: 5 * time.Millisecond}
	// One remote interrogation: stub → rpc.send → (server dispatch, ack).
	if err := driveCall(t, s, time.Minute, func() error {
		_, err := client.Bind(ref).WithQoS(qos).Call(ctx, "add")
		return err
	}); err != nil {
		t.Fatalf("remote call: %v", err)
	}
	// One co-located interrogation: stub → bypass, nothing on the wire.
	if err := driveCall(t, s, time.Minute, func() error {
		_, err := client.Bind(lref).Call(ctx, "add")
		return err
	}); err != nil {
		t.Fatalf("co-located call: %v", err)
	}
	if remote.load() != 1 || local.load() != 1 {
		t.Fatalf("executions remote=%d local=%d, want 1/1", remote.load(), local.load())
	}

	// Freeze sampling so retrieving the evidence does not grow it.
	client.Observer().SetSampleEvery(0)
	server.Observer().SetSampleEvery(0)

	serverSpans := fetchSpans(t, s, client, server.Agent.Ref())
	clientSpans := fetchSpans(t, s, client, client.Agent.Ref())

	// The unified snapshot folds every layer into one namespace.
	if err := driveCall(t, s, time.Minute, func() error {
		out, err := client.Bind(server.Agent.Ref()).WithQoS(qos).Call(ctx, "gather")
		if err != nil {
			return err
		}
		rec, _ := out.Result(0).(odp.Record)
		for _, key := range []string{
			"rpc.server.requests", "rpc.client.calls", "binder.invocations",
			"gc.collected", "obs.sampled",
		} {
			if _, ok := rec[key]; !ok {
				t.Errorf("gather record missing %q (got %d keys)", key, len(rec))
			}
		}
		if n, _ := rec["rpc.server.requests"].(uint64); n == 0 {
			t.Error("gather: rpc.server.requests = 0, want > 0")
		}
		return nil
	}); err != nil {
		t.Fatalf("gather via management interface: %v", err)
	}

	all := append(serverSpans, clientSpans...)
	assertTracedShapes(t, all)
	return odp.FormatSpans(all)
}

// assertTracedShapes checks the two causal trees the scenario must have
// produced: the remote invocation's cross-node tree and the co-located
// invocation's bypass tree.
func assertTracedShapes(t *testing.T, spans []odp.Span) {
	t.Helper()
	children := make(map[uint64][]odp.Span)
	for _, sp := range spans {
		children[sp.ParentID] = append(children[sp.ParentID], sp)
	}
	childOfKind := func(parent odp.Span, kind string) (odp.Span, bool) {
		for _, c := range children[parent.SpanID] {
			if c.Kind == kind {
				return c, true
			}
		}
		return odp.Span{}, false
	}

	var remoteTree, bypassTree bool
	for _, sp := range spans {
		if sp.Kind != "stub" || sp.Name != "add" || sp.ParentID != 0 {
			continue
		}
		if send, ok := childOfKind(sp, "rpc.send"); ok {
			d, okD := childOfKind(send, "rpc.dispatch")
			_, okA := childOfKind(send, "rpc.ack")
			if okD && okA && d.Node == "server" && d.TraceID == sp.TraceID {
				remoteTree = true
			}
			continue
		}
		if bp, ok := childOfKind(sp, "bypass"); ok && bp.Node == "client" {
			bypassTree = true
		}
	}
	if !remoteTree {
		t.Errorf("no remote tree (stub → rpc.send → {rpc.dispatch@server, rpc.ack}) in:\n%s",
			odp.FormatSpans(spans))
	}
	if !bypassTree {
		t.Errorf("no co-located tree (stub → bypass@client) in:\n%s",
			odp.FormatSpans(spans))
	}
}

// TestSimTracedInterrogation is the observability determinism pin: the
// same seed replayed twice must render byte-identical span forests —
// span ids from the node-keyed deterministic source, timestamps from the
// fake clock — and because both are seed-anchored, `go test -count=2`
// reproduces the same bytes again.
func TestSimTracedInterrogation(t *testing.T) {
	run := func() string {
		s := sim.New(29,
			sim.WithStrictSettle(),
			sim.WithDefaultLink(odp.LinkProfile{Latency: 500 * time.Microsecond}),
		)
		defer s.Close()
		return runTracedSim(t, s)
	}
	f1, f2 := run(), run()
	if f1 != f2 {
		t.Fatalf("span forest diverged for seed 29:\n--- run 1\n%s\n--- run 2\n%s", f1, f2)
	}
	if !strings.Contains(f1, "bypass") || !strings.Contains(f1, "rpc.dispatch") {
		t.Fatalf("forest misses expected span kinds:\n%s", f1)
	}
	t.Logf("seed=29 span forest (%d bytes):\n%s", len(f1), f1)
}

// TestE7RelocationSpanTree is the E7 (§5.4) transparency assertion in
// span-tree form: where the counter form checks Relocations totals, the
// tree form proves *which invocation* needed the relocator and where the
// consultation sits in its causal chain. A stationary interface's tree
// must carry no binder.resolve span at all; after the object re-hosts
// without leaving a forward, the stale-reference invocation's tree must
// show the failed send, the binder.resolve consultation (with the
// lookup's own nested send), and the successful retry — all under one
// stub root.
func TestE7RelocationSpanTree(t *testing.T) {
	ctx := context.Background()
	s := sim.New(17,
		sim.WithStrictSettle(),
		sim.WithDefaultLink(odp.LinkProfile{Latency: 200 * time.Microsecond}),
	)
	t.Cleanup(s.Close)
	home := simPlatform(t, s, "home")
	away := simPlatform(t, s, "away", odp.WithRelocator(home.RelocRef))
	client := simPlatform(t, s, "client",
		odp.WithRelocator(home.RelocRef),
		odp.WithTracing(odp.TraceSampleEvery(1)))

	ref, err := home.Publish("cell", odp.Object{Servant: &countingServant{}})
	if err != nil {
		t.Fatal(err)
	}
	qos := odp.QoS{Timeout: 30 * time.Second, Retransmit: 5 * time.Millisecond}
	call := func() error {
		return driveCall(t, s, time.Minute, func() error {
			_, err := client.Bind(ref).WithQoS(qos).Call(ctx, "add")
			return err
		})
	}

	// 1. Stationary: the object is where the reference says.
	if err := call(); err != nil {
		t.Fatalf("stationary call: %v", err)
	}

	// 2. The object re-hosts WITHOUT a forward (host restart, not a
	// graceful migration): the old capsule forgets the id, the new host
	// exports the same identity, and only the relocation service learns
	// the bumped epoch.
	home.Capsule.Unexport(ref.ID)
	moved, err := away.Publish(ref.ID, odp.Object{Servant: &countingServant{}})
	if err != nil {
		t.Fatal(err)
	}
	moved.Epoch = ref.Epoch + 1
	home.RelocTable.Register(moved)

	// 3. The same stale reference still works — the binder recovers.
	if err := call(); err != nil {
		t.Fatalf("post-move call via stale ref: %v", err)
	}

	client.Observer().SetSampleEvery(0)
	spans := fetchSpans(t, s, client, client.Agent.Ref())

	children := make(map[uint64][]odp.Span)
	for _, sp := range spans {
		children[sp.ParentID] = append(children[sp.ParentID], sp)
	}
	kindsOf := func(parent odp.Span) map[string]int {
		m := make(map[string]int)
		for _, c := range children[parent.SpanID] {
			m[c.Kind]++
		}
		return m
	}

	var stationary, relocated bool
	for _, sp := range spans {
		if sp.Kind != "stub" || sp.Name != "add" || sp.ParentID != 0 {
			continue
		}
		kinds := kindsOf(sp)
		if kinds["binder.resolve"] == 0 {
			// The stationary tree: sends, but no relocator consultation —
			// the span-tree form of "no relocator traffic" (§5.4 scaling).
			if kinds["rpc.send"] > 0 {
				stationary = true
			}
			continue
		}
		// The relocated tree: failed send + retry send around exactly one
		// consultation, and the consultation's own lookup rides the wire
		// as a nested send beneath it.
		if kinds["binder.resolve"] != 1 || kinds["rpc.send"] < 2 {
			t.Fatalf("relocated tree has %d resolves and %d sends, want 1 and >=2:\n%s",
				kinds["binder.resolve"], kinds["rpc.send"], odp.FormatSpans(spans))
		}
		for _, c := range children[sp.SpanID] {
			if c.Kind != "binder.resolve" {
				continue
			}
			if c.Name != ref.ID {
				t.Fatalf("resolve span names %q, want the moved ref %q", c.Name, ref.ID)
			}
			if kindsOf(c)["rpc.send"] == 0 {
				t.Fatalf("resolve span has no nested lookup send:\n%s", odp.FormatSpans(spans))
			}
		}
		relocated = true
	}
	if !stationary {
		t.Fatalf("no stationary tree (stub → rpc.send, no binder.resolve) in:\n%s", odp.FormatSpans(spans))
	}
	if !relocated {
		t.Fatalf("no relocated tree (stub → {rpc.send, binder.resolve → rpc.send, rpc.send}) in:\n%s", odp.FormatSpans(spans))
	}
}

// TestUnsampledTracingAddsNoAllocsE1 is the hot-path gate behind the
// "zero overhead until sampled" claim: an E1 remote loopback on
// platforms carrying the full tracing plumbing with sampling off must
// allocate exactly what an untraced platform does.
func TestUnsampledTracingAddsNoAllocsE1(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are skewed under -race: sync.Pool drops puts by design")
	}
	measure := func(opts ...odp.Option) float64 {
		f := odp.NewFabric(odp.WithSeed(1))
		defer f.Close()
		sep, err := f.Endpoint("server")
		if err != nil {
			t.Fatal(err)
		}
		server, err := odp.NewPlatform("server", sep, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer server.Close()
		cep, err := f.Endpoint("client")
		if err != nil {
			t.Fatal(err)
		}
		client, err := odp.NewPlatform("client", cep, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		ref, err := server.Publish("cell", odp.Object{Servant: &countingServant{}})
		if err != nil {
			t.Fatal(err)
		}
		proxy := client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
		ctx := context.Background()
		call := func() {
			if _, err := proxy.Call(ctx, "add"); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ { // settle pools, shards, routes
			call()
		}
		return testing.AllocsPerRun(200, call)
	}
	plain := measure()
	traced := measure(odp.WithTracing()) // sampling off: the default
	// Real added work would cost ≥ 1 alloc per call; 0.5 absorbs
	// background jitter while still proving the path adds nothing.
	if traced > plain+0.5 {
		t.Fatalf("unsampled tracing allocs/op = %.2f, untraced = %.2f: tracing leaked onto the hot path",
			traced, plain)
	}
	t.Logf("allocs/op untraced=%.2f traced-unsampled=%.2f", plain, traced)
}
